package metrics

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
)

func simDS(rate float64, seed uint64) *dataset.Dataset {
	refs := channel.RandomReferences(60, 110, 7)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.EqualMix(rate)),
		Coverage: channel.FixedCoverage(4),
	}
	return sim.Simulate("d", refs, seed)
}

func TestCompareDatasetsSelf(t *testing.T) {
	a := simDS(0.05, 1)
	d, err := CompareDatasets(a, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanNormEdit != 0 || d.MeanGestalt != 1 {
		t.Errorf("self-distance = %+v", d)
	}
	if d.Pairs != 180 {
		t.Errorf("pairs = %d", d.Pairs)
	}
	if !strings.Contains(d.String(), "norm-edit") {
		t.Errorf("String = %q", d.String())
	}
}

func TestCompareDatasetsOrdersByErrorRate(t *testing.T) {
	// Distance from a clean dataset should grow with the other dataset's
	// error rate.
	refs := channel.RandomReferences(60, 110, 7)
	clean := channel.Simulator{
		Channel:  channel.NewNaive("c", channel.Rates{}),
		Coverage: channel.FixedCoverage(4),
	}.Simulate("clean", refs, 2)
	low := simDS(0.03, 3)
	high := simDS(0.12, 4)
	dLow, err := CompareDatasets(clean, low, 3)
	if err != nil {
		t.Fatal(err)
	}
	dHigh, err := CompareDatasets(clean, high, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dLow.MeanNormEdit >= dHigh.MeanNormEdit {
		t.Errorf("edit distance not monotone: %v vs %v", dLow.MeanNormEdit, dHigh.MeanNormEdit)
	}
	if dLow.MeanGestalt <= dHigh.MeanGestalt {
		t.Errorf("gestalt similarity not monotone: %v vs %v", dLow.MeanGestalt, dHigh.MeanGestalt)
	}
}

func TestCompareDatasetsErrors(t *testing.T) {
	a := simDS(0.05, 1)
	b := &dataset.Dataset{Clusters: a.Clusters[:10]}
	if _, err := CompareDatasets(a, b, 3); err == nil {
		t.Error("cluster count mismatch accepted")
	}
	c := a.Clone()
	c.Clusters[0].Ref = "ACGT"
	if _, err := CompareDatasets(a, c, 3); err == nil {
		t.Error("reference mismatch accepted")
	}
	empty := &dataset.Dataset{}
	if _, err := CompareDatasets(empty, empty, 3); err == nil {
		t.Error("empty datasets accepted")
	}
}

func TestReadLengthHistogram(t *testing.T) {
	ds := &dataset.Dataset{Clusters: []dataset.Cluster{
		{Ref: "ACGT", Reads: []dna.Strand{"ACGT", "ACG", "ACGT"}},
	}}
	h := ReadLengthHistogram(ds)
	if h[4] != 2 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestLengthHistogramDistance(t *testing.T) {
	delHeavy := channel.Simulator{
		Channel:  channel.NewNaive("d", channel.Rates{Del: 0.1}),
		Coverage: channel.FixedCoverage(4),
	}.Simulate("del", channel.RandomReferences(60, 110, 7), 5)
	insHeavy := channel.Simulator{
		Channel:  channel.NewNaive("i", channel.Rates{Ins: 0.1}),
		Coverage: channel.FixedCoverage(4),
	}.Simulate("ins", channel.RandomReferences(60, 110, 7), 6)
	same := LengthHistogramDistance(delHeavy, delHeavy)
	diff := LengthHistogramDistance(delHeavy, insHeavy)
	if same != 0 {
		t.Errorf("self length distance = %v", same)
	}
	if diff < 0.5 {
		t.Errorf("del-vs-ins length distance = %v, want large", diff)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{1, 1, 2}
	if d := KLDivergence(p, p, 0); math.Abs(d) > 1e-9 {
		t.Errorf("self KL = %v", d)
	}
	q := []float64{2, 1, 1}
	if d := KLDivergence(p, q, 0); d <= 0 {
		t.Errorf("KL(p,q) = %v, want > 0", d)
	}
	// Different lengths and empty bins are handled via smoothing.
	if d := KLDivergence([]float64{1}, []float64{0, 1}, 1e-6); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("smoothed KL = %v", d)
	}
}
