package metrics

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
)

func simDS(rate float64, seed uint64) *dataset.Dataset {
	refs := channel.RandomReferences(60, 110, 7)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.EqualMix(rate)),
		Coverage: channel.FixedCoverage(4),
	}
	return sim.Simulate("d", refs, seed)
}

func TestCompareDatasetsSelf(t *testing.T) {
	a := simDS(0.05, 1)
	d, err := CompareDatasets(a, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanNormEdit != 0 || d.MeanGestalt != 1 {
		t.Errorf("self-distance = %+v", d)
	}
	if d.Pairs != 180 {
		t.Errorf("pairs = %d", d.Pairs)
	}
	if !strings.Contains(d.String(), "norm-edit") {
		t.Errorf("String = %q", d.String())
	}
}

func TestCompareDatasetsOrdersByErrorRate(t *testing.T) {
	// Distance from a clean dataset should grow with the other dataset's
	// error rate.
	refs := channel.RandomReferences(60, 110, 7)
	clean := channel.Simulator{
		Channel:  channel.NewNaive("c", channel.Rates{}),
		Coverage: channel.FixedCoverage(4),
	}.Simulate("clean", refs, 2)
	low := simDS(0.03, 3)
	high := simDS(0.12, 4)
	dLow, err := CompareDatasets(clean, low, 3)
	if err != nil {
		t.Fatal(err)
	}
	dHigh, err := CompareDatasets(clean, high, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dLow.MeanNormEdit >= dHigh.MeanNormEdit {
		t.Errorf("edit distance not monotone: %v vs %v", dLow.MeanNormEdit, dHigh.MeanNormEdit)
	}
	if dLow.MeanGestalt <= dHigh.MeanGestalt {
		t.Errorf("gestalt similarity not monotone: %v vs %v", dLow.MeanGestalt, dHigh.MeanGestalt)
	}
}

func TestCompareDatasetsErrors(t *testing.T) {
	a := simDS(0.05, 1)
	b := &dataset.Dataset{Clusters: a.Clusters[:10]}
	if _, err := CompareDatasets(a, b, 3); err == nil {
		t.Error("cluster count mismatch accepted")
	}
	c := a.Clone()
	c.Clusters[0].Ref = "ACGT"
	if _, err := CompareDatasets(a, c, 3); err == nil {
		t.Error("reference mismatch accepted")
	}
	empty := &dataset.Dataset{}
	if _, err := CompareDatasets(empty, empty, 3); err == nil {
		t.Error("empty datasets accepted")
	}
}

func TestReadLengthHistogram(t *testing.T) {
	ds := &dataset.Dataset{Clusters: []dataset.Cluster{
		{Ref: "ACGT", Reads: []dna.Strand{"ACGT", "ACG", "ACGT"}},
	}}
	h := ReadLengthHistogram(ds)
	if h[4] != 2 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestLengthHistogramDistance(t *testing.T) {
	delHeavy := channel.Simulator{
		Channel:  channel.NewNaive("d", channel.Rates{Del: 0.1}),
		Coverage: channel.FixedCoverage(4),
	}.Simulate("del", channel.RandomReferences(60, 110, 7), 5)
	insHeavy := channel.Simulator{
		Channel:  channel.NewNaive("i", channel.Rates{Ins: 0.1}),
		Coverage: channel.FixedCoverage(4),
	}.Simulate("ins", channel.RandomReferences(60, 110, 7), 6)
	same := LengthHistogramDistance(delHeavy, delHeavy)
	diff := LengthHistogramDistance(delHeavy, insHeavy)
	if same != 0 {
		t.Errorf("self length distance = %v", same)
	}
	if diff < 0.5 {
		t.Errorf("del-vs-ins length distance = %v, want large", diff)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{1, 1, 2}
	if d := KLDivergence(p, p, 0); math.Abs(d) > 1e-9 {
		t.Errorf("self KL = %v", d)
	}
	q := []float64{2, 1, 1}
	if d := KLDivergence(p, q, 0); d <= 0 {
		t.Errorf("KL(p,q) = %v, want > 0", d)
	}
	// Different lengths and empty bins are handled via smoothing.
	if d := KLDivergence([]float64{1}, []float64{0, 1}, 1e-6); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("smoothed KL = %v", d)
	}
}

// emptyDS builds a dataset whose clusters have references but zero reads —
// the shape a total-dropout fault or an unsequenced pool produces.
func emptyDS(n int) *dataset.Dataset {
	refs := channel.RandomReferences(n, 110, 7)
	ds := &dataset.Dataset{Name: "empty", Clusters: make([]dataset.Cluster, n)}
	for i := range ds.Clusters {
		ds.Clusters[i].Ref = refs[i]
	}
	return ds
}

// TestLengthHistogramDistanceEmptyDatasets is the regression test for the
// zero-read normalisation bug: a dataset with no reads must yield defined,
// non-NaN distances — 0 against another empty dataset, the maximal 1
// against a populated one.
func TestLengthHistogramDistanceEmptyDatasets(t *testing.T) {
	empty1, empty2 := emptyDS(10), emptyDS(5)
	full := simDS(0.05, 1)

	if d := LengthHistogramDistance(empty1, empty2); d != 0 {
		t.Errorf("empty vs empty = %v, want 0", d)
	}
	for name, d := range map[string]float64{
		"empty vs full": LengthHistogramDistance(empty1, full),
		"full vs empty": LengthHistogramDistance(full, empty1),
	} {
		if math.IsNaN(d) {
			t.Errorf("%s = NaN", name)
		}
		if d != 1 {
			t.Errorf("%s = %v, want maximal distance 1", name, d)
		}
	}
	// Sanity: the defined maximum dominates every real-vs-real distance.
	if d := LengthHistogramDistance(full, simDS(0.30, 9)); math.IsNaN(d) || d >= 1 {
		t.Errorf("real-vs-real distance = %v, want < 1 and not NaN", d)
	}
}

// TestNormalizeAllZero pins that an all-zero vector normalises to zeros
// (not NaNs) and that χ² over two such vectors is 0.
func TestNormalizeAllZero(t *testing.T) {
	z := Normalize([]float64{0, 0, 0})
	for i, v := range z {
		if v != 0 || math.IsNaN(v) {
			t.Errorf("Normalize zero vector [%d] = %v", i, v)
		}
	}
	if d := ChiSquare(z, z); d != 0 || math.IsNaN(d) {
		t.Errorf("ChiSquare(zeros, zeros) = %v, want 0", d)
	}
}
