package metrics

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/dna"
)

func TestComputeAccuracyPerfect(t *testing.T) {
	refs := []dna.Strand{"ACGT", "TTTT"}
	a := ComputeAccuracy(refs, refs)
	if a.PerStrand != 100 || a.PerChar != 100 {
		t.Errorf("accuracy = %+v", a)
	}
	if a.Strands != 2 || a.Chars != 8 {
		t.Errorf("counts = %+v", a)
	}
}

func TestComputeAccuracyPartial(t *testing.T) {
	refs := []dna.Strand{"ACGT", "ACGT"}
	recons := []dna.Strand{"ACGT", "ACGA"} // second has 3/4 correct
	a := ComputeAccuracy(refs, recons)
	if a.PerStrand != 50 {
		t.Errorf("per-strand = %v", a.PerStrand)
	}
	if math.Abs(a.PerChar-87.5) > 1e-9 {
		t.Errorf("per-char = %v", a.PerChar)
	}
}

func TestComputeAccuracyErasure(t *testing.T) {
	refs := []dna.Strand{"ACGT"}
	recons := []dna.Strand{""}
	a := ComputeAccuracy(refs, recons)
	if a.PerStrand != 0 || a.PerChar != 0 {
		t.Errorf("erasure accuracy = %+v", a)
	}
}

func TestComputeAccuracyLengthMismatchRecon(t *testing.T) {
	// Longer reconstruction: only positions within the reference count.
	refs := []dna.Strand{"ACGT"}
	recons := []dna.Strand{"ACGTAA"}
	a := ComputeAccuracy(refs, recons)
	if a.PerStrand != 0 {
		t.Error("longer recon counted as perfect")
	}
	if a.PerChar != 100 {
		t.Errorf("per-char = %v, want 100 (all 4 ref chars correct)", a.PerChar)
	}
}

func TestComputeAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on slice length mismatch")
		}
	}()
	ComputeAccuracy([]dna.Strand{"A"}, nil)
}

func TestComputeAccuracyEmpty(t *testing.T) {
	a := ComputeAccuracy(nil, nil)
	if a.PerStrand != 0 || a.PerChar != 0 {
		t.Errorf("empty accuracy = %+v", a)
	}
	if !strings.Contains(a.String(), "per-strand") {
		t.Error("String format")
	}
}

func TestPositionProfileAddAndRates(t *testing.T) {
	p := NewPositionProfile(4)
	p.add([]int{0, 2, 2, 7, -1}) // 7 clamps to last bin (4), -1 to 0
	if p.Pairs != 1 {
		t.Errorf("pairs = %d", p.Pairs)
	}
	if p.Counts[0] != 2 || p.Counts[2] != 2 || p.Counts[4] != 1 {
		t.Errorf("counts = %v", p.Counts)
	}
	if p.Total() != 5 {
		t.Errorf("total = %d", p.Total())
	}
	rates := p.Rates()
	if rates[2] != 2 {
		t.Errorf("rates = %v", rates)
	}
	empty := NewPositionProfile(3)
	for _, r := range empty.Rates() {
		if r != 0 {
			t.Error("empty profile rates nonzero")
		}
	}
}

func TestHammingProfilePropagation(t *testing.T) {
	// A deletion at position 1 makes every later position a Hamming error.
	refs := []dna.Strand{"ACGTACGT"}
	reads := []dna.Strand{"AGTACGT"} // C deleted
	prof := HammingProfile(refs, reads, 8)
	// Positions 1..6 mismatch, plus one length-mismatch error at read end.
	for p := 1; p <= 6; p++ {
		if prof.Counts[p] != 1 {
			t.Errorf("position %d count = %d", p, prof.Counts[p])
		}
	}
	if prof.Counts[0] != 0 {
		t.Errorf("position 0 count = %d", prof.Counts[0])
	}
	g := GestaltProfile(refs, reads, 8)
	if g.Total() != 1 || g.Counts[1] != 1 {
		t.Errorf("gestalt profile = %v", g.Counts)
	}
}

func TestProfilesSkipErasures(t *testing.T) {
	refs := []dna.Strand{"ACGT", "ACGT"}
	reads := []dna.Strand{"", "ACGT"}
	h := HammingProfile(refs, reads, 4)
	if h.Pairs != 1 || h.Total() != 0 {
		t.Errorf("hamming pairs=%d total=%d", h.Pairs, h.Total())
	}
	g := GestaltProfile(refs, reads, 4)
	if g.Pairs != 1 || g.Total() != 0 {
		t.Errorf("gestalt pairs=%d total=%d", g.Pairs, g.Total())
	}
}

func TestClusterProfiles(t *testing.T) {
	refs := []dna.Strand{"ACGT", "TTTT"}
	clusters := [][]dna.Strand{
		{"ACGT", "ACGA"},
		{"TTTT"},
	}
	h := ClusterHammingProfile(refs, clusters, 4)
	if h.Pairs != 3 {
		t.Errorf("pairs = %d", h.Pairs)
	}
	if h.Counts[3] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	g := ClusterGestaltProfile(refs, clusters, 4)
	if g.Total() != 1 {
		t.Errorf("gestalt total = %d", g.Total())
	}
}

func TestChiSquare(t *testing.T) {
	a := []float64{1, 2, 3}
	if ChiSquare(a, a) != 0 {
		t.Error("identical histograms should be distance 0")
	}
	d := ChiSquare([]float64{1, 0}, []float64{0, 1})
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("disjoint unit histograms distance = %v, want 1", d)
	}
	// Different lengths: missing bins are zero.
	d2 := ChiSquare([]float64{1}, []float64{1, 1})
	if math.Abs(d2-0.5) > 1e-12 {
		t.Errorf("padded distance = %v, want 0.5", d2)
	}
	if ChiSquare(nil, nil) != 0 {
		t.Error("empty histograms should be distance 0")
	}
}

func TestNormalize(t *testing.T) {
	n := Normalize([]float64{2, 2, 4})
	if math.Abs(n[2]-0.5) > 1e-12 {
		t.Errorf("normalize = %v", n)
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Error("all-zero normalize should stay zero")
	}
}

func TestCensusErrors(t *testing.T) {
	refs := []dna.Strand{"ACGT", "ACGT", "ACGT", "ACGT"}
	strands := []dna.Strand{
		"ACGT", // clean
		"ACG",  // 1 deletion
		"ACGA", // 1 substitution
		"",     // erasure, skipped
	}
	c := CensusErrors(refs, strands)
	if c.Dels != 1 || c.Subs != 1 || c.Inss != 0 {
		t.Errorf("census = %+v", c)
	}
	if c.Total() != 2 {
		t.Errorf("total = %d", c.Total())
	}
	if math.Abs(c.Fraction(align.Del)-0.5) > 1e-12 {
		t.Errorf("del fraction = %v", c.Fraction(align.Del))
	}
	if c.Fraction(align.Equal) != 0 {
		t.Error("non-error kind fraction should be 0")
	}
	if !strings.Contains(c.String(), "del 50.0%") {
		t.Errorf("census string = %q", c.String())
	}
	var empty ErrorCensus
	if empty.Fraction(align.Del) != 0 {
		t.Error("empty census fraction should be 0")
	}
}

func TestMeanEditDistance(t *testing.T) {
	refs := []dna.Strand{"ACGT", "ACGT", "ACGT"}
	strands := []dna.Strand{"ACGT", "ACG", ""}
	m := MeanEditDistance(refs, strands)
	if math.Abs(m-0.5) > 1e-12 {
		t.Errorf("mean distance = %v, want 0.5", m)
	}
	if !math.IsNaN(MeanEditDistance([]dna.Strand{"A"}, []dna.Strand{""})) {
		t.Error("all-erasure mean should be NaN")
	}
}
