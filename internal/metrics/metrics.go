// Package metrics implements the paper's evaluation criteria (§3.1): the
// headline per-strand and per-character reconstruction accuracies, the
// Hamming and gestalt-aligned error-position profiles used in every figure,
// the χ² histogram distance, and a census of residual error types.
package metrics

import (
	"fmt"
	"math"

	"dnastore/internal/align"
	"dnastore/internal/dna"
)

// Accuracy is the paper's key metric pair: per-strand accuracy is the
// percentage of reference strands reconstructed without any error;
// per-character accuracy is the percentage of reference characters
// reconstructed with the correct base at the correct position.
type Accuracy struct {
	// PerStrand is in percent (0–100).
	PerStrand float64
	// PerChar is in percent (0–100).
	PerChar float64
	// Strands is the number of strand pairs evaluated.
	Strands int
	// Chars is the total number of reference characters evaluated.
	Chars int
}

// String renders the accuracy as the paper's tables do.
func (a Accuracy) String() string {
	return fmt.Sprintf("per-strand %.2f%%, per-char %.2f%%", a.PerStrand, a.PerChar)
}

// ComputeAccuracy compares reconstructed strands with their references,
// position by position. A missing reconstruction (empty strand for a
// non-empty reference, e.g. an erasure) scores zero characters correct.
// It panics if the slices differ in length.
func ComputeAccuracy(refs, recons []dna.Strand) Accuracy {
	if len(refs) != len(recons) {
		panic(fmt.Sprintf("metrics: %d references vs %d reconstructions", len(refs), len(recons)))
	}
	var acc Accuracy
	acc.Strands = len(refs)
	perfect := 0
	matched := 0
	for i, ref := range refs {
		rec := recons[i]
		acc.Chars += ref.Len()
		if rec == ref {
			perfect++
			matched += ref.Len()
			continue
		}
		n := ref.Len()
		if rec.Len() < n {
			n = rec.Len()
		}
		for p := 0; p < n; p++ {
			if ref[p] == rec[p] {
				matched++
			}
		}
	}
	if acc.Strands > 0 {
		acc.PerStrand = 100 * float64(perfect) / float64(acc.Strands)
	}
	if acc.Chars > 0 {
		acc.PerChar = 100 * float64(matched) / float64(acc.Chars)
	}
	return acc
}

// PositionProfile is an error-count histogram over strand positions — the
// data behind every Hamming/gestalt figure in the paper. Index p counts
// errors observed at position p; the final bin aggregates positions at or
// beyond the profile length.
type PositionProfile struct {
	// Counts[p] is the number of errors observed at position p.
	Counts []int
	// Pairs is the number of (reference, strand) pairs profiled.
	Pairs int
}

// NewPositionProfile allocates a profile covering positions 0..length
// (inclusive one-past-end bin for length mismatches).
func NewPositionProfile(length int) *PositionProfile {
	return &PositionProfile{Counts: make([]int, length+1)}
}

// add records error positions, clamping overflow into the last bin.
func (p *PositionProfile) add(positions []int) {
	for _, pos := range positions {
		if pos < 0 {
			pos = 0
		}
		if pos >= len(p.Counts) {
			pos = len(p.Counts) - 1
		}
		p.Counts[pos]++
	}
	p.Pairs++
}

// Total returns the total error count across positions.
func (p *PositionProfile) Total() int {
	t := 0
	for _, c := range p.Counts {
		t += c
	}
	return t
}

// Rates returns per-position error rates: count divided by pairs profiled.
func (p *PositionProfile) Rates() []float64 {
	out := make([]float64, len(p.Counts))
	if p.Pairs == 0 {
		return out
	}
	for i, c := range p.Counts {
		out[i] = float64(c) / float64(p.Pairs)
	}
	return out
}

// HammingProfile builds the Hamming error-position profile of reads (or
// reconstructions) against their references: every position that differs
// when the strings are compared index-by-index. This is the comparison in
// which a single early indel propagates to every later position (Fig 3.2a).
// Pairs where the second strand is empty are skipped as erasures.
func HammingProfile(refs, strands []dna.Strand, length int) *PositionProfile {
	prof := NewPositionProfile(length)
	for i, ref := range refs {
		if strands[i].Len() == 0 && ref.Len() > 0 {
			continue
		}
		prof.add(align.HammingErrorPositions(string(ref), string(strands[i])))
	}
	return prof
}

// GestaltProfile builds the gestalt-aligned error-position profile: only
// the *sources* of misalignment count, at the positions gestalt matching
// attributes them to (Fig 3.2b). Pairs with an empty second strand are
// skipped as erasures.
func GestaltProfile(refs, strands []dna.Strand, length int) *PositionProfile {
	prof := NewPositionProfile(length)
	for i, ref := range refs {
		if strands[i].Len() == 0 && ref.Len() > 0 {
			continue
		}
		prof.add(align.GestaltErrorPositions(string(ref), string(strands[i])))
	}
	return prof
}

// ClusterHammingProfile profiles every read of every cluster against its
// reference — the pre-reconstruction noise analysis of Fig 3.2.
func ClusterHammingProfile(refs []dna.Strand, clusters [][]dna.Strand, length int) *PositionProfile {
	prof := NewPositionProfile(length)
	for i, reads := range clusters {
		for _, read := range reads {
			prof.add(align.HammingErrorPositions(string(refs[i]), string(read)))
		}
	}
	return prof
}

// ClusterGestaltProfile is ClusterHammingProfile with gestalt attribution.
func ClusterGestaltProfile(refs []dna.Strand, clusters [][]dna.Strand, length int) *PositionProfile {
	prof := NewPositionProfile(length)
	for i, reads := range clusters {
		for _, read := range reads {
			prof.add(align.GestaltErrorPositions(string(refs[i]), string(read)))
		}
	}
	return prof
}

// ChiSquare returns the χ² distance Σ (a−b)²/(a+b) between two histograms,
// the simulator-evaluation metric suggested in §3.1. Bins empty in both
// histograms contribute nothing. Histograms of different lengths compare
// over the longer length with missing bins as zero.
func ChiSquare(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		var x, y float64
		if i < len(a) {
			x = a[i]
		}
		if i < len(b) {
			y = b[i]
		}
		if x+y == 0 {
			continue
		}
		d := x - y
		sum += d * d / (x + y)
	}
	return sum / 2
}

// Normalize scales a histogram to sum to 1. An all-zero histogram yields
// an all-zero result rather than the NaNs a naive 0/0 division would
// produce; callers comparing such a vector against a real distribution
// must decide the distance themselves (see LengthHistogramDistance).
func Normalize(h []float64) []float64 {
	total := 0.0
	for _, v := range h {
		total += v
	}
	out := make([]float64, len(h))
	if total == 0 {
		return out
	}
	for i, v := range h {
		out[i] = v / total
	}
	return out
}

// ErrorCensus counts residual error operations by type, used for findings
// like "the most common errors after Iterative reconstruction were
// deletions (90% of total)" (§3.4.1).
type ErrorCensus struct {
	Subs, Dels, Inss int
}

// Total returns the number of error operations counted.
func (c ErrorCensus) Total() int { return c.Subs + c.Dels + c.Inss }

// Fraction returns the share of the given kind, or 0 for an empty census.
func (c ErrorCensus) Fraction(kind align.OpKind) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	switch kind {
	case align.Sub:
		return float64(c.Subs) / float64(t)
	case align.Del:
		return float64(c.Dels) / float64(t)
	case align.Ins:
		return float64(c.Inss) / float64(t)
	default:
		return 0
	}
}

// String renders the census percentages.
func (c ErrorCensus) String() string {
	return fmt.Sprintf("sub %.1f%%, del %.1f%%, ins %.1f%% (n=%d)",
		100*c.Fraction(align.Sub), 100*c.Fraction(align.Del), 100*c.Fraction(align.Ins), c.Total())
}

// CensusErrors extracts the maximum-likelihood edit script for each
// (reference, strand) pair and tallies error operations by type. Empty
// strands against non-empty references are skipped as erasures.
func CensusErrors(refs, strands []dna.Strand) ErrorCensus {
	var c ErrorCensus
	for i, ref := range refs {
		if strands[i].Len() == 0 && ref.Len() > 0 {
			continue
		}
		for _, op := range align.Script(string(ref), string(strands[i]), align.ScriptOptions{}) {
			switch op.Kind {
			case align.Sub:
				c.Subs++
			case align.Del:
				c.Dels++
			case align.Ins:
				c.Inss++
			}
		}
	}
	return c
}

// MeanEditDistance returns the average Levenshtein distance between
// corresponding strands, skipping erasures; NaN if nothing was compared.
func MeanEditDistance(refs, strands []dna.Strand) float64 {
	total, n := 0, 0
	for i, ref := range refs {
		if strands[i].Len() == 0 && ref.Len() > 0 {
			continue
		}
		total += align.Distance(string(ref), string(strands[i]))
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(total) / float64(n)
}
