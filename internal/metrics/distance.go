package metrics

import (
	"fmt"
	"math"

	"dnastore/internal/align"
	"dnastore/internal/dataset"
)

// Dataset-level distances: the direct simulator-evaluation metrics §3.1
// enumerates before settling on reconstruction accuracy — normalized edit
// distance between corresponding clusters (option 2), gestalt similarity
// (option 3), and χ² distance between error statistics (option 1, via
// ChiSquare over profile histograms). They quantify how far a simulated
// dataset sits from a reference dataset without running any reconstruction.

// ClusterDistance summarises the pairwise comparison of two datasets'
// clusters.
type ClusterDistance struct {
	// MeanNormEdit is the mean Levenshtein distance between sampled read
	// pairs of corresponding clusters, normalised by reference length.
	MeanNormEdit float64
	// MeanGestalt is the mean Ratcliff–Obershelp similarity of the same
	// pairs (1 = identical).
	MeanGestalt float64
	// Pairs is the number of read pairs compared.
	Pairs int
}

// String renders the distance summary.
func (d ClusterDistance) String() string {
	return fmt.Sprintf("norm-edit %.4f, gestalt %.4f (n=%d)", d.MeanNormEdit, d.MeanGestalt, d.Pairs)
}

// CompareDatasets compares corresponding clusters of two datasets (same
// reference order, as produced by simulating on a real dataset's
// references): up to maxPerCluster read pairs per cluster are compared
// positionally. It returns an error when the datasets' cluster counts
// differ or no pairs exist.
func CompareDatasets(a, b *dataset.Dataset, maxPerCluster int) (ClusterDistance, error) {
	if a.NumClusters() != b.NumClusters() {
		return ClusterDistance{}, fmt.Errorf("metrics: cluster counts differ: %d vs %d", a.NumClusters(), b.NumClusters())
	}
	if maxPerCluster <= 0 {
		maxPerCluster = 3
	}
	var sumEdit, sumGestalt float64
	pairs := 0
	for i := range a.Clusters {
		ca, cb := a.Clusters[i], b.Clusters[i]
		if ca.Ref != cb.Ref {
			return ClusterDistance{}, fmt.Errorf("metrics: cluster %d references differ", i)
		}
		n := len(ca.Reads)
		if len(cb.Reads) < n {
			n = len(cb.Reads)
		}
		if n > maxPerCluster {
			n = maxPerCluster
		}
		refLen := ca.Ref.Len()
		if refLen == 0 {
			continue
		}
		for k := 0; k < n; k++ {
			ra, rb := string(ca.Reads[k]), string(cb.Reads[k])
			sumEdit += float64(align.Distance(ra, rb)) / float64(refLen)
			sumGestalt += align.GestaltScore(ra, rb)
			pairs++
		}
	}
	if pairs == 0 {
		return ClusterDistance{}, fmt.Errorf("metrics: no comparable read pairs")
	}
	return ClusterDistance{
		MeanNormEdit: sumEdit / float64(pairs),
		MeanGestalt:  sumGestalt / float64(pairs),
		Pairs:        pairs,
	}, nil
}

// ReadLengthHistogram returns the distribution of read lengths in a
// dataset, as a map from length to count — a cheap shape statistic that
// separates deletion-heavy channels from insertion-heavy ones.
func ReadLengthHistogram(ds *dataset.Dataset) map[int]int {
	h := make(map[int]int)
	for _, c := range ds.Clusters {
		for _, r := range c.Reads {
			h[r.Len()]++
		}
	}
	return h
}

// LengthHistogramDistance returns the χ² distance between the read-length
// distributions of two datasets, after normalising each to sum 1.
//
// Datasets with zero reads get defined results instead of the ambiguous
// values a blind 0/0 normalisation path would produce: two empty datasets
// are identical (distance 0), and an empty dataset against a non-empty one
// is maximally distant (1, the χ² supremum for distributions with disjoint
// support). The result is never NaN.
func LengthHistogramDistance(a, b *dataset.Dataset) float64 {
	ha, hb := ReadLengthHistogram(a), ReadLengthHistogram(b)
	na, nb := 0, 0
	for _, c := range ha {
		na += c
	}
	for _, c := range hb {
		nb += c
	}
	switch {
	case na == 0 && nb == 0:
		return 0
	case na == 0 || nb == 0:
		return 1
	}
	maxLen := 0
	for l := range ha {
		if l > maxLen {
			maxLen = l
		}
	}
	for l := range hb {
		if l > maxLen {
			maxLen = l
		}
	}
	va := make([]float64, maxLen+1)
	vb := make([]float64, maxLen+1)
	for l, c := range ha {
		va[l] = float64(c)
	}
	for l, c := range hb {
		vb[l] = float64(c)
	}
	return ChiSquare(Normalize(va), Normalize(vb))
}

// KLDivergence returns the Kullback–Leibler divergence D(p‖q) of two
// histograms after normalisation, with additive smoothing so that empty
// q-bins do not produce infinities. Inputs of different lengths compare
// over the longer length.
func KLDivergence(p, q []float64, smoothing float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	if smoothing <= 0 {
		smoothing = 1e-9
	}
	get := func(h []float64, i int) float64 {
		if i < len(h) {
			return h[i]
		}
		return 0
	}
	sumP, sumQ := 0.0, 0.0
	for i := 0; i < n; i++ {
		sumP += get(p, i) + smoothing
		sumQ += get(q, i) + smoothing
	}
	d := 0.0
	for i := 0; i < n; i++ {
		pi := (get(p, i) + smoothing) / sumP
		qi := (get(q, i) + smoothing) / sumQ
		d += pi * math.Log(pi/qi)
	}
	return d
}
