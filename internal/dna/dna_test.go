package dna

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBaseRoundTrip(t *testing.T) {
	for _, c := range []byte{'A', 'C', 'G', 'T'} {
		b, err := BaseFromByte(c)
		if err != nil {
			t.Fatalf("BaseFromByte(%q): %v", c, err)
		}
		if b.Byte() != c {
			t.Errorf("round trip %q -> %v -> %q", c, b, b.Byte())
		}
	}
}

func TestBaseFromByteLowercase(t *testing.T) {
	for _, pair := range []struct {
		lower, upper byte
	}{{'a', 'A'}, {'c', 'C'}, {'g', 'G'}, {'t', 'T'}} {
		b, err := BaseFromByte(pair.lower)
		if err != nil {
			t.Fatalf("BaseFromByte(%q): %v", pair.lower, err)
		}
		if b.Byte() != pair.upper {
			t.Errorf("BaseFromByte(%q) = %v, want %q", pair.lower, b, pair.upper)
		}
	}
}

func TestBaseFromByteInvalid(t *testing.T) {
	for _, c := range []byte{'N', 'X', ' ', 0, '5'} {
		if _, err := BaseFromByte(c); err == nil {
			t.Errorf("BaseFromByte(%q): want error", c)
		}
	}
}

func TestMustBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBase('N') did not panic")
		}
	}()
	MustBase('N')
}

func TestBaseComplement(t *testing.T) {
	want := map[Base]Base{A: T, T: A, C: G, G: C}
	for b, w := range want {
		if got := b.Complement(); got != w {
			t.Errorf("%v.Complement() = %v, want %v", b, got, w)
		}
	}
}

func TestComplementIsInvolution(t *testing.T) {
	for b := Base(0); b < NumBases; b++ {
		if b.Complement().Complement() != b {
			t.Errorf("complement not involutive for %v", b)
		}
	}
}

func TestStrandValidate(t *testing.T) {
	cases := []struct {
		s  Strand
		ok bool
	}{
		{"", true},
		{"ACGT", true},
		{"AAAA", true},
		{"ACGU", false},
		{"AC GT", false},
		{"acgt", true},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%q) = %v, want ok=%v", c.s, err, c.ok)
		}
	}
}

func TestStrandAtAndBases(t *testing.T) {
	s := Strand("ACGT")
	want := []Base{A, C, G, T}
	for i, w := range want {
		if s.At(i) != w {
			t.Errorf("At(%d) = %v, want %v", i, s.At(i), w)
		}
	}
	got := s.Bases()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Bases()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFromBasesRoundTrip(t *testing.T) {
	s := Strand("GATTACA")
	if got := FromBases(s.Bases()); got != s {
		t.Errorf("FromBases(Bases()) = %q, want %q", got, s)
	}
}

func TestReverse(t *testing.T) {
	if got := Strand("ACGT").Reverse(); got != "TGCA" {
		t.Errorf("Reverse = %q, want TGCA", got)
	}
	if got := Strand("").Reverse(); got != "" {
		t.Errorf("Reverse empty = %q", got)
	}
}

func TestReverseComplement(t *testing.T) {
	if got := Strand("AACG").ReverseComplement(); got != "CGTT" {
		t.Errorf("ReverseComplement = %q, want CGTT", got)
	}
}

func TestReverseIsInvolutionQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		bs := make([]Base, len(raw))
		for i, r := range raw {
			bs[i] = Base(r % NumBases)
		}
		s := FromBases(bs)
		return s.Reverse().Reverse() == s && s.ReverseComplement().ReverseComplement() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCRatio(t *testing.T) {
	cases := []struct {
		s    Strand
		want float64
	}{
		{"", 0},
		{"AT", 0},
		{"GC", 1},
		{"ACGT", 0.5},
		{"GGGA", 0.75},
	}
	for _, c := range cases {
		if got := c.s.GCRatio(); got != c.want {
			t.Errorf("GCRatio(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestCount(t *testing.T) {
	s := Strand("AACGTA")
	if got := s.Count(A); got != 3 {
		t.Errorf("Count(A) = %d, want 3", got)
	}
	if got := s.Count(G); got != 1 {
		t.Errorf("Count(G) = %d, want 1", got)
	}
}

func TestHomopolymers(t *testing.T) {
	s := Strand("AAACGGGGTC")
	runs := s.Homopolymers(2)
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2: %+v", len(runs), runs)
	}
	if runs[0] != (Homopolymer{Pos: 0, Len: 3, Base: A}) {
		t.Errorf("run[0] = %+v", runs[0])
	}
	if runs[1] != (Homopolymer{Pos: 4, Len: 4, Base: G}) {
		t.Errorf("run[1] = %+v", runs[1])
	}
}

func TestHomopolymersMinLenOne(t *testing.T) {
	s := Strand("ACG")
	runs := s.Homopolymers(0) // clamped to 1
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	total := 0
	for _, r := range runs {
		total += r.Len
	}
	if total != s.Len() {
		t.Errorf("runs cover %d bases, want %d", total, s.Len())
	}
}

func TestMaxHomopolymerLen(t *testing.T) {
	cases := []struct {
		s    Strand
		want int
	}{
		{"", 0},
		{"A", 1},
		{"ACGT", 1},
		{"AATTTT", 4},
		{"TTTTAA", 4},
	}
	for _, c := range cases {
		if got := c.s.MaxHomopolymerLen(); got != c.want {
			t.Errorf("MaxHomopolymerLen(%q) = %d, want %d", c.s, got, c.want)
		}
	}
	if !Strand("AAA").HasHomopolymerOver(2) {
		t.Error("AAA should have homopolymer over 2")
	}
	if Strand("AAA").HasHomopolymerOver(3) {
		t.Error("AAA should not have homopolymer over 3")
	}
}

func TestHomopolymersCoverStrandQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		bs := make([]Base, len(raw))
		for i, r := range raw {
			bs[i] = Base(r % NumBases)
		}
		s := FromBases(bs)
		runs := s.Homopolymers(1)
		total := 0
		prevEnd := 0
		for _, r := range runs {
			if r.Pos != prevEnd {
				return false // runs must be contiguous
			}
			total += r.Len
			prevEnd = r.Pos + r.Len
			// every byte inside the run must equal the run base
			for i := r.Pos; i < r.Pos+r.Len; i++ {
				if s.At(i) != r.Base {
					return false
				}
			}
		}
		return total == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKmerCounts(t *testing.T) {
	s := Strand("AAAT")
	counts := s.KmerCounts(2)
	if counts["AA"] != 2 || counts["AT"] != 1 {
		t.Errorf("KmerCounts = %v", counts)
	}
	if len(s.KmerCounts(0)) != 0 {
		t.Error("KmerCounts(0) should be empty")
	}
	if len(s.KmerCounts(5)) != 0 {
		t.Error("KmerCounts(k>len) should be empty")
	}
}

func TestRepeat(t *testing.T) {
	if got := Repeat(G, 4); got != "GGGG" {
		t.Errorf("Repeat(G,4) = %q", got)
	}
	if got := Repeat(A, 0); got != "" {
		t.Errorf("Repeat(A,0) = %q", got)
	}
}

func TestStrandAtPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At on invalid base did not panic")
		}
	}()
	Strand("N").At(0)
}

func TestComplementStrand(t *testing.T) {
	if got := Strand("ACGT").Complement(); got != "TGCA" {
		t.Errorf("Complement = %q, want TGCA", got)
	}
}

func TestStrandStringsAreComparable(t *testing.T) {
	m := map[Strand]int{"ACG": 1}
	if m[Strand(strings.Clone("ACG"))] != 1 {
		t.Error("strand map lookup failed")
	}
}
