package dna

import (
	"testing"
	"testing/quick"
)

func TestPackRoundTripQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		bs := make([]Base, len(raw))
		for i, r := range raw {
			bs[i] = Base(r % NumBases)
		}
		s := FromBases(bs)
		p := Pack(s)
		if p.Len() != s.Len() {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if p.At(i) != s.At(i) {
				return false
			}
		}
		return p.Unpack() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackMemory(t *testing.T) {
	s := Strand("ACGTACGTACGTACGT") // 16 bases
	p := Pack(s)
	if p.MemoryBytes() != 4 {
		t.Errorf("16 bases pack to %d bytes, want 4", p.MemoryBytes())
	}
	// Ragged length.
	if Pack(Strand("ACGTA")).MemoryBytes() != 2 {
		t.Errorf("5 bases pack to %d bytes, want 2", Pack(Strand("ACGTA")).MemoryBytes())
	}
	if Pack("").MemoryBytes() != 0 {
		t.Error("empty strand should pack to 0 bytes")
	}
}

func TestPackedEqual(t *testing.T) {
	a := Pack("ACGTACG")
	b := Pack("ACGTACG")
	c := Pack("ACGTACC")
	d := Pack("ACGTAC")
	if !a.Equal(b) {
		t.Error("equal sequences not Equal")
	}
	if a.Equal(c) {
		t.Error("different content Equal")
	}
	if a.Equal(d) {
		t.Error("different length Equal")
	}
}

func TestPackedAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range At")
		}
	}()
	Pack("ACG").At(3)
}

// TestAppendBasesKernels: the bulk kernels must agree with the per-base
// accessors for every length (ragged tails included) and honour
// append-to-existing semantics.
func TestAppendBasesKernels(t *testing.T) {
	f := func(raw []uint8, prefix uint8) bool {
		bs := make([]Base, len(raw))
		for i, r := range raw {
			bs[i] = Base(r % NumBases)
		}
		s := FromBases(bs)

		// Strand.AppendBases onto a non-empty prefix.
		pre := make([]Base, int(prefix%5))
		got := s.AppendBases(pre)
		if len(got) != len(pre)+len(bs) {
			return false
		}
		for i, b := range bs {
			if got[len(pre)+i] != b {
				return false
			}
		}

		// PackBases / Packed.AppendBases round trip.
		p := PackBases(bs)
		if p.Len() != len(bs) {
			return false
		}
		back := p.AppendBases(nil)
		for i, b := range bs {
			if p.At(i) != b || back[i] != b {
				return false
			}
		}

		// AppendLetters reproduces the strand.
		return Strand(AppendLetters(nil, back)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAppendBasesReuseNoAlloc: with sufficient capacity the kernels must
// not allocate — the contract the per-worker transmit arenas rely on.
func TestAppendBasesReuseNoAlloc(t *testing.T) {
	s := Strand("ACGTACGTACGTACGTACGTACG")
	p := Pack(s)
	codes := make([]Base, 0, s.Len())
	letters := make([]byte, 0, s.Len())
	if n := testing.AllocsPerRun(100, func() {
		codes = s.AppendBases(codes[:0])
		codes = p.AppendBases(codes[:0])
		letters = AppendLetters(letters[:0], codes)
	}); n != 0 {
		t.Errorf("kernels allocated %.1f times per run with pre-sized buffers", n)
	}
}

func TestPackAll(t *testing.T) {
	strands := []Strand{"A", "ACGT", ""}
	packed := PackAll(strands)
	if len(packed) != 3 {
		t.Fatalf("got %d", len(packed))
	}
	for i := range strands {
		if packed[i].Unpack() != strands[i] {
			t.Errorf("strand %d corrupted", i)
		}
	}
}
