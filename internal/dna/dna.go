// Package dna provides the fundamental types of the DNA storage channel:
// bases, strands, and the sequence utilities (GC-ratio, homopolymer
// analysis, complements, k-mers) that the rest of the simulator builds on.
//
// A DNA strand is modelled as a byte string over the alphabet {A, C, G, T}.
// Strands are represented as Go strings for immutability and cheap slicing;
// the Base type gives a compact 2-bit index for table lookups.
package dna

import (
	"errors"
	"fmt"
	"strings"
)

// Base is one of the four DNA nucleotides, encoded as a 2-bit index.
// The zero value is A.
type Base uint8

// The four nucleotides. The numeric order (A, C, G, T) is alphabetical and
// is relied upon by codec packages for 2-bit encodings.
const (
	A Base = iota
	C
	G
	T
	// NumBases is the size of the DNA alphabet.
	NumBases = 4
)

// ErrInvalidBase reports a byte outside the {A,C,G,T} alphabet.
var ErrInvalidBase = errors.New("dna: invalid base")

// baseLetters maps Base -> ASCII letter.
var baseLetters = [NumBases]byte{'A', 'C', 'G', 'T'}

// letterBases maps ASCII byte -> Base+1 (0 means invalid).
var letterBases = func() [256]uint8 {
	var t [256]uint8
	t['A'], t['C'], t['G'], t['T'] = 1, 2, 3, 4
	t['a'], t['c'], t['g'], t['t'] = 1, 2, 3, 4
	return t
}()

// Byte returns the ASCII letter for b.
func (b Base) Byte() byte { return baseLetters[b&3] }

// String returns the single-letter name of the base.
func (b Base) String() string { return string(baseLetters[b&3]) }

// Valid reports whether b is one of the four defined bases.
func (b Base) Valid() bool { return b < NumBases }

// Complement returns the Watson–Crick complement: A<->T, C<->G.
func (b Base) Complement() Base {
	return 3 - (b & 3)
}

// BaseFromByte converts an ASCII letter (either case) to a Base.
func BaseFromByte(c byte) (Base, error) {
	v := letterBases[c]
	if v == 0 {
		return 0, fmt.Errorf("%w: %q", ErrInvalidBase, c)
	}
	return Base(v - 1), nil
}

// MustBase converts an ASCII letter to a Base and panics on invalid input.
// Intended for constants and tests.
func MustBase(c byte) Base {
	b, err := BaseFromByte(c)
	if err != nil {
		panic(err)
	}
	return b
}

// Strand is an immutable DNA sequence over {A,C,G,T}.
type Strand string

// Validate returns an error if s contains a byte outside the DNA alphabet.
// The empty strand is valid.
func (s Strand) Validate() error {
	for i := 0; i < len(s); i++ {
		if letterBases[s[i]] == 0 {
			return fmt.Errorf("%w: %q at position %d", ErrInvalidBase, s[i], i)
		}
	}
	return nil
}

// Len returns the number of bases in the strand.
func (s Strand) Len() int { return len(s) }

// At returns the base at position i. It panics if i is out of range or the
// byte is not a valid base; call Validate first on untrusted input.
func (s Strand) At(i int) Base {
	v := letterBases[s[i]]
	if v == 0 {
		panic(fmt.Sprintf("dna: invalid base %q at position %d", s[i], i))
	}
	return Base(v - 1)
}

// Bases returns the strand as a slice of Base values.
// It panics on invalid bytes; call Validate first on untrusted input.
func (s Strand) Bases() []Base {
	return s.AppendBases(make([]Base, 0, len(s)))
}

// AppendBases appends the strand's base codes to dst and returns the
// extended slice — the reuse-friendly form of Bases. Pass a scratch
// dst[:0] to convert a strand once per cluster without allocating, so hot
// loops can index 2-bit codes instead of re-decoding ASCII per read.
// It panics on invalid bytes; call Validate first on untrusted input.
func (s Strand) AppendBases(dst []Base) []Base {
	if n := len(dst) + len(s); cap(dst) < n {
		grown := make([]Base, len(dst), n)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < len(s); i++ {
		v := letterBases[s[i]]
		if v == 0 {
			panic(fmt.Sprintf("dna: invalid base %q at position %d", s[i], i))
		}
		dst = append(dst, Base(v-1))
	}
	return dst
}

// FromBases builds a Strand from a slice of bases.
func FromBases(bs []Base) Strand {
	var sb strings.Builder
	sb.Grow(len(bs))
	for _, b := range bs {
		sb.WriteByte(b.Byte())
	}
	return Strand(sb.String())
}

// Reverse returns the strand with base order reversed (not the reverse
// complement; see ReverseComplement).
func (s Strand) Reverse() Strand {
	b := []byte(s)
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return Strand(b)
}

// Complement returns the base-wise Watson–Crick complement of the strand.
func (s Strand) Complement() Strand {
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		v := letterBases[s[i]]
		if v == 0 {
			panic(fmt.Sprintf("dna: invalid base %q at position %d", s[i], i))
		}
		b[i] = Base(v - 1).Complement().Byte()
	}
	return Strand(b)
}

// ReverseComplement returns the reverse complement, the sequence read from
// the opposite DNA strand.
func (s Strand) ReverseComplement() Strand {
	return s.Complement().Reverse()
}

// GCRatio returns the fraction of G and C bases in the strand, in [0,1].
// The empty strand has GC-ratio 0.
func (s Strand) GCRatio() float64 {
	if len(s) == 0 {
		return 0
	}
	gc := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'G', 'C', 'g', 'c':
			gc++
		}
	}
	return float64(gc) / float64(len(s))
}

// Count returns the number of occurrences of base b in the strand.
func (s Strand) Count(b Base) int {
	n := 0
	c := b.Byte()
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			n++
		}
	}
	return n
}

// Homopolymer describes a maximal run of a single repeated base.
type Homopolymer struct {
	// Pos is the 0-based start index of the run.
	Pos int
	// Len is the run length (>= 1).
	Len int
	// Base is the repeated base.
	Base Base
}

// Homopolymers returns every maximal run of length >= minLen, in order of
// position. minLen values below 1 are treated as 1.
func (s Strand) Homopolymers(minLen int) []Homopolymer {
	if minLen < 1 {
		minLen = 1
	}
	var runs []Homopolymer
	for i := 0; i < len(s); {
		j := i + 1
		for j < len(s) && s[j] == s[i] {
			j++
		}
		if j-i >= minLen {
			runs = append(runs, Homopolymer{Pos: i, Len: j - i, Base: s.At(i)})
		}
		i = j
	}
	return runs
}

// MaxHomopolymerLen returns the length of the longest homopolymer run, or 0
// for the empty strand.
func (s Strand) MaxHomopolymerLen() int {
	maxLen := 0
	for i := 0; i < len(s); {
		j := i + 1
		for j < len(s) && s[j] == s[i] {
			j++
		}
		if j-i > maxLen {
			maxLen = j - i
		}
		i = j
	}
	return maxLen
}

// HasHomopolymerOver reports whether the strand contains a run strictly
// longer than limit.
func (s Strand) HasHomopolymerOver(limit int) bool {
	return s.MaxHomopolymerLen() > limit
}

// KmerCounts returns a map from every k-length substring to its number of
// occurrences. It returns an empty map when k <= 0 or k > len(s).
func (s Strand) KmerCounts(k int) map[Strand]int {
	counts := make(map[Strand]int)
	if k <= 0 || k > len(s) {
		return counts
	}
	for i := 0; i+k <= len(s); i++ {
		counts[s[i:i+k]]++
	}
	return counts
}

// Repeat returns the strand consisting of n copies of base b.
func Repeat(b Base, n int) Strand {
	return Strand(strings.Repeat(string(b.Byte()), n))
}
