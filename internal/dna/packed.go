package dna

import "fmt"

// Packed is a 2-bit-per-base compressed strand representation: four bases
// per byte. Large pools (a full 10,000 × 110 dataset holds ~30 M read
// bases) shrink 4× in memory, at the cost of per-base unpacking. Packed
// values are immutable once built.
type Packed struct {
	bits []byte
	n    int
}

// Pack compresses a strand. It panics on invalid bases; Validate untrusted
// input first.
func Pack(s Strand) Packed {
	bits := make([]byte, (s.Len()+3)/4)
	for i := 0; i < s.Len(); i++ {
		b := s.At(i)
		bits[i/4] |= byte(b) << uint((i%4)*2)
	}
	return Packed{bits: bits, n: s.Len()}
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// At returns the base at position i; it panics when out of range.
func (p Packed) At(i int) Base {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: packed index %d out of range [0,%d)", i, p.n))
	}
	return Base(p.bits[i/4]>>uint((i%4)*2)) & 3
}

// Unpack expands back to the string representation.
func (p Packed) Unpack() Strand {
	out := make([]byte, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = p.At(i).Byte()
	}
	return Strand(out)
}

// Equal reports whether two packed strands hold the same sequence.
func (p Packed) Equal(q Packed) bool {
	if p.n != q.n {
		return false
	}
	full := p.n / 4
	for i := 0; i < full; i++ {
		if p.bits[i] != q.bits[i] {
			return false
		}
	}
	// Compare the ragged tail base-by-base (trailing bits may differ
	// only if built from differing inputs, but mask anyway for safety).
	for i := full * 4; i < p.n; i++ {
		if p.At(i) != q.At(i) {
			return false
		}
	}
	return true
}

// PackAll compresses a batch of strands.
func PackAll(strands []Strand) []Packed {
	out := make([]Packed, len(strands))
	for i, s := range strands {
		out[i] = Pack(s)
	}
	return out
}

// MemoryBytes returns the approximate heap bytes held by the packed
// sequence data.
func (p Packed) MemoryBytes() int { return len(p.bits) }
