package dna

import "fmt"

// Packed is a 2-bit-per-base compressed strand representation: four bases
// per byte. Large pools (a full 10,000 × 110 dataset holds ~30 M read
// bases) shrink 4× in memory, at the cost of per-base unpacking. Packed
// values are immutable once built.
//
// The bulk kernels below (Pack, PackBases, AppendBases, AppendLetters)
// move whole strands between the three representations — ASCII Strand,
// []Base codes, 2-bit packed — one word at a time instead of one base at a
// time, so the transmit hot path can run on base codes and touch the
// ASCII alphabet exactly once per strand.
type Packed struct {
	bits []byte
	n    int
}

// Pack compresses a strand. It panics on invalid bases; Validate untrusted
// input first.
func Pack(s Strand) Packed {
	return PackBases(s.AppendBases(nil))
}

// PackBases compresses a slice of 2-bit base codes — the append kernel
// of the packed representation: four codes fold into each output byte.
func PackBases(codes []Base) Packed {
	bits := make([]byte, (len(codes)+3)/4)
	i := 0
	for ; i+4 <= len(codes); i += 4 {
		bits[i/4] = byte(codes[i]&3) |
			byte(codes[i+1]&3)<<2 |
			byte(codes[i+2]&3)<<4 |
			byte(codes[i+3]&3)<<6
	}
	var tail byte
	for j := i; j < len(codes); j++ {
		tail |= byte(codes[j]&3) << uint((j%4)*2)
	}
	if i < len(codes) {
		bits[i/4] = tail
	}
	return Packed{bits: bits, n: len(codes)}
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// At returns the base at position i; it panics when out of range.
func (p Packed) At(i int) Base {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("dna: packed index %d out of range [0,%d)", i, p.n))
	}
	return Base(p.bits[i/4]>>uint((i%4)*2)) & 3
}

// AppendBases appends every base code to dst and returns the extended
// slice — the iterate kernel: each packed byte is loaded once and expanded
// into four codes, instead of one shift-and-mask call per base. Pass a
// reused dst[:0] for an allocation-free unpack.
func (p Packed) AppendBases(dst []Base) []Base {
	if n := len(dst) + p.n; cap(dst) < n {
		grown := make([]Base, len(dst), n)
		copy(grown, dst)
		dst = grown
	}
	full := p.n / 4
	for i := 0; i < full; i++ {
		w := p.bits[i]
		dst = append(dst, Base(w&3), Base(w>>2&3), Base(w>>4&3), Base(w>>6&3))
	}
	for i := full * 4; i < p.n; i++ {
		dst = append(dst, Base(p.bits[i/4]>>uint((i%4)*2))&3)
	}
	return dst
}

// AppendLetters appends the ASCII letters of the given base codes to dst —
// the code-to-Strand kernel used to materialise transmit output once per
// read.
func AppendLetters(dst []byte, codes []Base) []byte {
	if n := len(dst) + len(codes); cap(dst) < n {
		grown := make([]byte, len(dst), n)
		copy(grown, dst)
		dst = grown
	}
	for _, c := range codes {
		dst = append(dst, baseLetters[c&3])
	}
	return dst
}

// Unpack expands back to the string representation.
func (p Packed) Unpack() Strand {
	codes := p.AppendBases(make([]Base, 0, p.n))
	return Strand(AppendLetters(make([]byte, 0, p.n), codes))
}

// Equal reports whether two packed strands hold the same sequence.
func (p Packed) Equal(q Packed) bool {
	if p.n != q.n {
		return false
	}
	full := p.n / 4
	for i := 0; i < full; i++ {
		if p.bits[i] != q.bits[i] {
			return false
		}
	}
	// Compare the ragged tail base-by-base (trailing bits may differ
	// only if built from differing inputs, but mask anyway for safety).
	for i := full * 4; i < p.n; i++ {
		if p.At(i) != q.At(i) {
			return false
		}
	}
	return true
}

// PackAll compresses a batch of strands.
func PackAll(strands []Strand) []Packed {
	out := make([]Packed, len(strands))
	var scratch []Base
	for i, s := range strands {
		scratch = s.AppendBases(scratch[:0])
		out[i] = PackBases(scratch)
	}
	return out
}

// MemoryBytes returns the approximate heap bytes held by the packed
// sequence data.
func (p Packed) MemoryBytes() int { return len(p.bits) }
