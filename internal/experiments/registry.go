package experiments

import (
	"fmt"
	"sort"
)

// Entry is one runnable experiment in the registry.
type Entry struct {
	// ID matches DESIGN.md's per-experiment index ("table2.1", "fig3.3").
	ID string
	// Description says what the experiment reproduces.
	Description string
	// NeedsWorkbench is true when the experiment consumes the shared
	// wetlab dataset and calibration (most do).
	NeedsWorkbench bool
	// Run executes the experiment; wb may be nil when NeedsWorkbench is
	// false.
	Run func(wb *Workbench, scale Scale) ([]Result, error)
}

// Registry returns every experiment, sorted by ID.
func Registry() []Entry {
	entries := []Entry{
		{
			ID: "table1.1", Description: "Sequencing technology comparison",
			Run: func(_ *Workbench, _ Scale) ([]Result, error) { return []Result{Table11()}, nil },
		},
		{
			ID: "table2.1", Description: "Per-strand accuracy on real vs naive vs DNASimulator data", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) { return []Result{Table21(wb)}, nil },
		},
		{
			ID: "table2.2", Description: "Accuracy at fixed coverage 5 and 6", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := Table22(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "table3.1", Description: "Progressive simulator tiers at N=5", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := Table31(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "table3.2", Description: "Progressive simulator tiers at N=6", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := Table32(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "fig3.2", Description: "Pre-reconstruction noise profile of Nanopore data", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) { return []Result{Figure32(wb)}, nil },
		},
		{
			ID: "fig3.3", Description: "Iterative accuracy at coverages 1-10", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				s, err := Figure33(wb)
				return []Result{s}, err
			},
		},
		{
			ID: "fig3.4", Description: "Post-reconstruction profiles on Nanopore data (N=5 and N=6, incl. C.1)", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				s5, err := Figure34(wb, 5)
				if err != nil {
					return nil, err
				}
				s6, err := Figure34(wb, 6)
				if err != nil {
					return nil, err
				}
				return []Result{s5, s6}, nil
			},
		},
		{
			ID: "fig3.5", Description: "Post-reconstruction profiles on skewed simulated data (N=5 and N=6, incl. C.2)", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				return []Result{Figure35(wb, 5), Figure35(wb, 6)}, nil
			},
		},
		{
			ID: "fig3.6", Description: "Second-order error table and spatial histograms", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				return []Result{Figure36Table(wb), Figure36Spatial(wb, 4)}, nil
			},
		},
		{
			ID: "fig3.7", Description: "Accuracy and profiles at uniform distribution across error rates",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				return []Result{Figure37Accuracy(scale), Figure37Profiles(scale)}, nil
			},
		},
		{
			ID: "fig3.8", Description: "BMA gestalt profiles vs coverage at p=0.15",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) { return []Result{Figure38(scale)}, nil },
		},
		{
			ID: "fig3.9", Description: "Pre-reconstruction spatial distributions (uniform, A, V)",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) { return []Result{Figure39(scale)}, nil },
		},
		{
			ID: "fig3.10", Description: "BMA under A-shaped vs V-shaped spatial skew",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				return []Result{Figure310Accuracy(scale, 5), Figure310Profiles(scale, 5)}, nil
			},
		},
		{
			ID: "ext4.3", Description: "Two-way Iterative extension", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := ExtTwoWayIterative(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "abl.stages", Description: "Aggregate single-pass vs multi-stage pipeline",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) { return []Result{AblationStages(scale)}, nil },
		},
		{
			ID: "abl.window", Description: "BMA look-ahead window sweep",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) { return []Result{AblationBMAWindow(scale)}, nil },
		},
		{
			ID: "abl.splice", Description: "Two-way splice rule ablation",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) { return []Result{AblationSplice(scale)}, nil },
		},
		{
			ID: "abl.script", Description: "Edit-script tie-break policy ablation", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := AblationScriptPolicy(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "abl.affine", Description: "Unit vs affine edit-script extraction", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := AblationAffineExtraction(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "abl.census", Description: "Residual error-type census", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := AblationResidualCensus(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "figC", Description: "Appendix C per-tier post-reconstruction profiles + summary", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				series, err := AppendixC(wb, 5)
				if err != nil {
					return nil, err
				}
				summary, err := AppendixCSummary(wb, 5)
				if err != nil {
					return nil, err
				}
				out := []Result{summary}
				for _, s := range series {
					out = append(out, s)
				}
				return out, nil
			},
		},
		{
			ID: "ext.metrics", Description: "Statistical distance of tiers from real data", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := ExtStatisticalDistance(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "ext.aging", Description: "Retrieval accuracy vs storage time",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				return []Result{ExtAging(scale)}, nil
			},
		},
		{
			ID: "ext.stageconv", Description: "Iterative convergence per stage combination (population-aware pipeline)",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				return []Result{ExtStageConvergence(scale)}, nil
			},
		},
		{
			ID: "ext.weighted", Description: "Copy weighting under cluster contamination",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				return []Result{ExtWeightedIterative(scale)}, nil
			},
		},
		{
			ID: "ext.clustering", Description: "Perfect vs imperfect clustering", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := ExtClustering(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "ext.chimera", Description: "Chimeric reads (strand-strand interactions)",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				return []Result{ExtChimera(scale)}, nil
			},
		},
		{
			ID: "ext.holdout", Description: "Held-out calibration generalization check", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := ExtHoldout(wb)
				return []Result{t}, err
			},
		},
		{
			ID: "ext.errorscale", Description: "Calibration robustness across error regimes",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				t, err := ExtErrorScale(scale)
				return []Result{t}, err
			},
		},
		{
			ID: "abl.homopolymer", Description: "Homopolymer error boost modelling",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				t, err := AblationHomopolymer(scale)
				return []Result{t}, err
			},
		},
		{
			ID: "abl.coverage", Description: "Coverage model shape comparison",
			Run: func(_ *Workbench, scale Scale) ([]Result, error) {
				return []Result{AblationCoverageModels(scale)}, nil
			},
		},
		{
			ID: "abl.algorithms", Description: "Full algorithm roster on real data", NeedsWorkbench: true,
			Run: func(wb *Workbench, _ Scale) ([]Result, error) {
				t, err := AblationAlgorithms(wb)
				return []Result{t}, err
			},
		},
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return entries
}

// Lookup finds a registry entry by ID.
func Lookup(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
