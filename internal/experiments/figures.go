package experiments

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/metrics"
	"dnastore/internal/recon"
)

// positionAxis builds the shared x axis 0..length.
func positionAxis(length int) []float64 {
	x := make([]float64, length+1)
	for i := range x {
		x[i] = float64(i)
	}
	return x
}

// clustersOf adapts a dataset to the profile helpers.
func clustersOf(ds *dataset.Dataset) (refs []dna.Strand, reads [][]dna.Strand) {
	refs = ds.References()
	reads = make([][]dna.Strand, len(ds.Clusters))
	for i, c := range ds.Clusters {
		reads[i] = c.Reads
	}
	return refs, reads
}

// Figure32 reproduces Fig 3.2: the pre-reconstruction noise profile of
// the real Nanopore data — Hamming errors per read position (linear
// growth from error propagation) and gestalt-aligned errors (terminal
// concentration, end ≈ 2× start).
func Figure32(wb *Workbench) Series {
	length := wb.Profile.StrandLen
	refs, reads := clustersOf(wb.Real)
	h := metrics.ClusterHammingProfile(refs, reads, length)
	g := metrics.ClusterGestaltProfile(refs, reads, length)
	return Series{
		ID:     "fig3.2",
		Title:  "Noise in Nanopore dataset before reconstruction (errors per read)",
		XLabel: "position",
		X:      positionAxis(length),
		Columns: []SeriesColumn{
			{Label: "hamming", Y: h.Rates()},
			{Label: "gestalt-aligned", Y: g.Rates()},
		},
	}
}

// Figure33 reproduces Fig 3.3: Iterative reconstruction accuracy on the
// real data at coverages 1–10 using the §3.2 prefix-subsampling protocol.
func Figure33(wb *Workbench) (Series, error) {
	s := Series{
		ID:     "fig3.3",
		Title:  "Accuracy of Iterative reconstruction at N = 1..10",
		XLabel: "coverage",
	}
	var perStrand, perChar []float64
	for n := 1; n <= 10; n++ {
		ds, err := wb.FixedCoverage(n, 10)
		if err != nil {
			return Series{}, err
		}
		ps, pc := reconstructAccuracy(recon.NewIterative(), ds)
		s.X = append(s.X, float64(n))
		perStrand = append(perStrand, ps)
		perChar = append(perChar, pc)
	}
	s.Columns = []SeriesColumn{
		{Label: "per-strand %", Y: perStrand},
		{Label: "per-char %", Y: perChar},
	}
	return s, nil
}

// postReconProfiles runs the given algorithms on a dataset and returns the
// Hamming and gestalt-aligned profiles of their outputs.
func postReconProfiles(ds *dataset.Dataset, length int, algs []recon.Reconstructor) []SeriesColumn {
	var cols []SeriesColumn
	refs := ds.References()
	for _, alg := range algs {
		out := recon.ReconstructDataset(alg, ds)
		h := metrics.HammingProfile(refs, out, length)
		g := metrics.GestaltProfile(refs, out, length)
		cols = append(cols,
			SeriesColumn{Label: alg.Name() + " hamming", Y: h.Rates()},
			SeriesColumn{Label: alg.Name() + " gestalt", Y: g.Rates()},
		)
	}
	return cols
}

// Figure34 reproduces Fig 3.4 (and appendix C.1): post-reconstruction
// error-position profiles of BMA and Iterative on the real data at the
// given coverage (the paper shows N=5 and N=6).
func Figure34(wb *Workbench, n int) (Series, error) {
	ds, err := wb.FixedCoverage(n, 10)
	if err != nil {
		return Series{}, err
	}
	length := wb.Profile.StrandLen
	return Series{
		ID:      fmt.Sprintf("fig3.4(N=%d)", n),
		Title:   fmt.Sprintf("Post-reconstruction analysis of Nanopore data at N = %d", n),
		XLabel:  "position",
		X:       positionAxis(length),
		Columns: postReconProfiles(ds, length, []recon.Reconstructor{recon.NewIterative(), recon.NewBMA()}),
	}, nil
}

// Figure35 reproduces Fig 3.5 (and appendix C.2): post-reconstruction
// profiles of the spatially-skewed simulator tier at the given coverage.
func Figure35(wb *Workbench, n int) Series {
	tier := wb.Profile.SkewedModel("skew-tier")
	sim := channel.Simulator{Channel: tier, Coverage: channel.FixedCoverage(n)}.
		Simulate("skewed-sim", wb.Real.References(), wb.Scale.Seed+400+uint64(n))
	length := wb.Profile.StrandLen
	return Series{
		ID:      fmt.Sprintf("fig3.5(N=%d)", n),
		Title:   fmt.Sprintf("Post-reconstruction analysis of simulated data with skew at N = %d", n),
		XLabel:  "position",
		X:       positionAxis(length),
		Columns: postReconProfiles(sim, length, []recon.Reconstructor{recon.NewIterative(), recon.NewBMA()}),
	}
}

// Figure36Table reproduces the tabular half of Fig 3.6: the ten most
// common second-order errors with their share of all errors.
func Figure36Table(wb *Workbench) Table {
	t := Table{
		ID:      "fig3.6",
		Title:   "Most common second-order errors in Nanopore data",
		Headers: []string{"Rank", "Error", "Count", "Share of errors (%)"},
	}
	total := wb.Profile.SubCount + wb.Profile.InsCount + wb.Profile.DelCount
	for i, s := range wb.Profile.TopSecondOrder(10) {
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Count) / float64(total)
		}
		e := channel.SecondOrderError{Kind: s.Kind, From: s.From, To: s.To}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), e.String(), fmt.Sprintf("%d", s.Count), pct(share),
		})
	}
	t.Rows = append(t.Rows, []string{"", "top-10 combined", "", pct(100 * wb.Profile.SecondOrderShare(10))})
	return t
}

// Figure36Spatial reproduces the spatial half of Fig 3.6: per-position
// histograms of the top second-order errors, showing their individual
// terminal skews.
func Figure36Spatial(wb *Workbench, topK int) Series {
	s := Series{
		ID:     "fig3.6-spatial",
		Title:  "Spatial distribution of top second-order errors",
		XLabel: "position",
		X:      positionAxis(wb.Profile.StrandLen),
	}
	for _, stat := range wb.Profile.TopSecondOrder(topK) {
		e := channel.SecondOrderError{Kind: stat.Kind, From: stat.From, To: stat.To}
		s.Columns = append(s.Columns, SeriesColumn{Label: e.String(), Y: stat.Spatial})
	}
	return s
}
