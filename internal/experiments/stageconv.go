package experiments

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/recon"
)

// ExtStageConvergence reruns the reconstruction-convergence question per
// stage combination: starting from the aggregate single-pass channel, each
// row adds one physical stage of the population-aware pipeline, ending at
// the full NewPhysicalPipeline with its pool effects bound over coverage.
// Sweeping target coverage shows how many extra reads each stage costs to
// reach the same Iterative accuracy — the multi-stage channels are harder
// at equal aggregate rate because their error mass is spatially and
// population-wise concentrated.
func ExtStageConvergence(scale Scale) Table {
	t := Table{
		ID:      "ext.stageconv",
		Title:   "Iterative convergence per stage combination (equal aggregate rate, coverage sweep)",
		Headers: []string{"Channel", "Pool stages", "N", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	const total = 0.059
	const years = 100.0

	type combo struct {
		name string
		pipe channel.Pipeline
	}
	seqOnly := channel.Pipeline{Label: "sequencing", Stages: []channel.Stage{
		channel.NewSequencingStage(channel.NanoporeMix(total), channel.PaperLongDeletion(), nil),
	}}
	synthSeq := channel.Pipeline{Label: "synthesis→sequencing", Stages: []channel.Stage{
		channel.NewSynthesisStage(0.2 * total),
		channel.NewSequencingStage(channel.NanoporeMix(0.8*total), channel.PaperLongDeletion(), nil),
	}}
	staged := channel.NewStoragePipeline("4-stage strand", total, years)
	physical := channel.NewPhysicalPipeline("4-stage physical", total, years)

	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+1400)
	for ci, c := range []combo{
		{"sequencing only", seqOnly},
		{"synthesis→sequencing", synthSeq},
		{"4-stage strand", staged},
		{"4-stage physical (pool)", physical},
	} {
		for ni, n := range []int{2, 4, 6, 8, 10} {
			base := channel.FixedCoverage(n)
			bound := c.pipe.BindCoverage(base)
			poolCol := "none"
			if bound.Name() != base.Name() {
				poolCol = "pcr-skew+breakage"
			}
			sim := channel.Simulator{Channel: c.pipe, Coverage: bound}
			ds := sim.Simulate(c.name, refs, scale.Seed+1401+uint64(ci*100+ni))
			ps, pc := reconstructAccuracy(recon.NewIterative(), ds)
			t.Rows = append(t.Rows, []string{
				c.name, poolCol, fmt.Sprintf("%d", n), pct(ps), pct(pc),
			})
		}
	}
	return t
}
