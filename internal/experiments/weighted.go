package experiments

import (
	"strconv"

	"dnastore/internal/channel"
	"dnastore/internal/recon"
)

// ExtWeightedIterative evaluates the paper's second §4.3 proposal —
// weighting copies by how well they track the partial reconstruction — in
// the regime it targets: clusters contaminated by mis-clustered reads
// (§1.1.2: "a noisy copy n' of a strand n might be clustered together
// with copies of another strand m"). Each cluster of the real-shaped data
// receives alien reads; the weighted sweep should degrade most
// gracefully.
func ExtWeightedIterative(scale Scale) Table {
	t := Table{
		ID:      "ext.weighted",
		Title:   "Copy weighting under cluster contamination (§4.3 extension)",
		Headers: []string{"Contaminant reads", "Iterative ps/pc (%)", "Weighted ps/pc (%)", "BMA ps/pc (%)"},
	}
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+1600)
	alien := channel.RandomReferences(scale.Clusters, 110, scale.Seed+1601)
	m := channel.NewNaive("n", channel.NanoporeMix(0.059))
	sim := channel.Simulator{Channel: m, Coverage: channel.FixedCoverage(6)}
	base := sim.Simulate("clean", refs, scale.Seed+1602)
	alienDS := sim.Simulate("alien", alien, scale.Seed+1603)

	for _, contamination := range []int{0, 1, 2, 3} {
		ds := base.Clone()
		for i := range ds.Clusters {
			ds.Clusters[i].Reads = append(ds.Clusters[i].Reads, alienDS.Clusters[i].Reads[:contamination]...)
		}
		row := []string{strconv.Itoa(contamination)}
		for _, alg := range []recon.Reconstructor{recon.NewIterative(), recon.NewWeightedIterative(), recon.NewBMA()} {
			ps, pc := reconstructAccuracy(alg, ds)
			row = append(row, pct(ps)+" / "+pct(pc))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ExtChimera measures the impact of strand-strand interaction artifacts —
// chimeric reads, the §2.2.3 deficiency a per-strand error model cannot
// express — on reconstruction, and whether copy weighting recovers some of
// the loss (a chimera tracks the consensus until its splice point, then
// diverges, which is exactly the drift the weighting penalises).
func ExtChimera(scale Scale) Table {
	t := Table{
		ID:      "ext.chimera",
		Title:   "Chimeric reads (strand-strand interactions) and reconstruction",
		Headers: []string{"Chimera rate", "Iterative ps/pc (%)", "Weighted ps/pc (%)"},
	}
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+1800)
	base := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.NanoporeMix(0.059)),
		Coverage: channel.FixedCoverage(6),
	}
	for i, p := range []float64{0, 0.05, 0.10, 0.20} {
		ds := channel.ChimericSimulator{Simulator: base, P: p}.
			Simulate("chimera", refs, scale.Seed+1801+uint64(i))
		row := []string{strconv.FormatFloat(p, 'g', -1, 64)}
		for _, alg := range []recon.Reconstructor{recon.NewIterative(), recon.NewWeightedIterative()} {
			ps, pc := reconstructAccuracy(alg, ds)
			row = append(row, pct(ps)+" / "+pct(pc))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
