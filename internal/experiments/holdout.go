package experiments

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
)

// ExtHoldout addresses the paper's §4.3 generalization worry: "it must be
// ensured that the simulator is able to summarize the general properties
// of the DNA storage pipeline, and not memorize a given dataset." The real
// dataset is split in half; the full tier is calibrated once on the train
// half and once on the test half itself (the memorization ceiling), and
// both calibrations are evaluated against the test half's reconstruction
// accuracy. A simulator that merely memorized strand-specific quirks would
// open a gap between the two rows; matching gaps mean the fitted
// parameters capture channel-general structure.
func ExtHoldout(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "ext.holdout",
		Title:   "Held-out calibration: does the fitted simulator generalize?",
		Headers: []string{"Calibration source", "Fitted aggregate", "Sim BMA ps (%)", "Sim Iter ps (%)", "Gap vs real BMA (pp)"},
	}
	// Split clusters into halves.
	half := len(wb.Real.Clusters) / 2
	if half < 10 {
		return Table{}, fmt.Errorf("experiments: dataset too small to split")
	}
	train := &dataset.Dataset{Name: "train", Clusters: wb.Real.Clusters[:half]}
	test := &dataset.Dataset{Name: "test", Clusters: wb.Real.Clusters[half:]}

	// Reference accuracy on the test half at fixed coverage.
	testShuffled := test.Clone()
	testShuffled.ShuffleReads(rng.New(wb.Scale.Seed + 1700))
	testN5, err := testShuffled.SubsampleFixed(5, 10)
	if err != nil {
		return Table{}, err
	}
	realBMA, _ := reconstructAccuracy(recon.NewBMA(), testN5)
	realIter, _ := reconstructAccuracy(recon.NewIterative(), testN5)
	t.Rows = append(t.Rows, []string{"(real test half)", "—", pct(realBMA), pct(realIter), "0.00"})

	for i, src := range []*dataset.Dataset{train, test} {
		p, err := profile.Profile(src, profile.Options{})
		if err != nil {
			return Table{}, err
		}
		model := p.SecondOrderModel("fit-"+src.Name, 10)
		sim := channel.Simulator{Channel: model, Coverage: channel.FixedCoverage(5)}.
			Simulate(src.Name, test.References(), wb.Scale.Seed+1701+uint64(i))
		bma, _ := reconstructAccuracy(recon.NewBMA(), sim)
		iter, _ := reconstructAccuracy(recon.NewIterative(), sim)
		label := "held-out (train half)"
		if src == test {
			label = "in-sample (test half)"
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.4f", p.AggregateRate()),
			pct(bma), pct(iter),
			fmt.Sprintf("%.2f", bma-realBMA),
		})
	}
	return t, nil
}
