package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationHomopolymer(t *testing.T) {
	tab, err := AblationHomopolymer(Scale{Clusters: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	flat := cell(t, tab, 0, 1)
	boosted := cell(t, tab, 1, 1)
	if boosted < flat*1.5 {
		t.Errorf("boosted ratio %.2f not clearly above flat %.2f", boosted, flat)
	}
}

func TestAblationCoverageModels(t *testing.T) {
	tab := AblationCoverageModels(Scale{Clusters: 250, Seed: 4})
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Fixed coverage has no erasures; the overdispersed negative binomial
	// should have some and should trail fixed coverage in accuracy.
	fixedErasures, _ := strconv.Atoi(tab.Rows[0][1])
	nbErasures, _ := strconv.Atoi(tab.Rows[2][1])
	if fixedErasures != 0 {
		t.Errorf("fixed coverage erasures = %d", fixedErasures)
	}
	if nbErasures == 0 {
		t.Error("negative-binomial produced no erasures")
	}
	if cell(t, tab, 2, 4) >= cell(t, tab, 0, 4) {
		t.Errorf("negbin per-strand %.2f not below fixed %.2f", cell(t, tab, 2, 4), cell(t, tab, 0, 4))
	}
}

func TestAblationAlgorithms(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := AblationAlgorithms(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 6 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Per-char accuracy holds or improves from N=5 to N=6 — with slack for
	// even-coverage vote ties (3–3 splits), which genuinely hurt the
	// column-voting algorithms at N=6.
	for i, row := range tab.Rows {
		n5 := cell(t, tab, i, 2)
		n6 := cell(t, tab, i, 4)
		if n6 < n5-4 {
			t.Errorf("%s: per-char regressed from N=5 (%.2f) to N=6 (%.2f)", row[0], n5, n6)
		}
	}
}

func TestAblationAffineExtraction(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := AblationAffineExtraction(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Affine burst probability must be at least the unit-cost one.
	if cell(t, tab, 1, 2) < cell(t, tab, 0, 2)*0.95 {
		t.Errorf("affine long-del p %.4f below unit %.4f", cell(t, tab, 1, 2), cell(t, tab, 0, 2))
	}
	// Aggregates stay comparable across cost models.
	ratio := cell(t, tab, 1, 1) / cell(t, tab, 0, 1)
	if ratio < 0.9 || ratio > 1.25 {
		t.Errorf("aggregate ratio across cost models = %.3f", ratio)
	}
}

func TestExtWeightedIterative(t *testing.T) {
	tab := ExtWeightedIterative(Scale{Clusters: 250, Seed: 15})
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	parse := func(row, col int) (ps float64) {
		parts := strings.Split(tab.Rows[row][col], " / ")
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			t.Fatalf("cell (%d,%d): %v", row, col, err)
		}
		return v
	}
	// Under the heaviest contamination, the weighted variant must beat
	// the plain sweep per-strand.
	plain := parse(3, 1)
	weighted := parse(3, 2)
	if weighted <= plain {
		t.Errorf("weighted %.2f not above plain %.2f at 3 contaminants", weighted, plain)
	}
	// With no contamination the two should be comparable.
	if d := parse(0, 2) - parse(0, 1); d < -4 {
		t.Errorf("weighted costs %.2f pp on clean clusters", -d)
	}
}

func TestExtChimera(t *testing.T) {
	tab := ExtChimera(Scale{Clusters: 250, Seed: 17})
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	parse := func(row, col int) float64 {
		parts := strings.Split(tab.Rows[row][col], " / ")
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			t.Fatalf("cell (%d,%d): %v", row, col, err)
		}
		return v
	}
	// Accuracy decays with the chimera rate.
	if parse(3, 1) >= parse(0, 1) {
		t.Errorf("plain Iterative did not degrade with chimeras: %.2f vs %.2f", parse(3, 1), parse(0, 1))
	}
	// Weighting recovers some of the loss at the highest rate.
	if parse(3, 2) <= parse(3, 1)-0.5 {
		t.Errorf("weighted (%.2f) below plain (%.2f) under chimeras", parse(3, 2), parse(3, 1))
	}
}
