package experiments

import "testing"

func TestExtStatisticalDistance(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := ExtStatisticalDistance(wb)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: DNASimulator, Naive, +Cond, +Skew, +2nd-order.
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Spatial χ²: the skew and second-order tiers (rows 3, 4) must sit far
	// closer to the real spatial histogram than the naive tier (row 1).
	naive := cell(t, tab, 1, 1)
	skew := cell(t, tab, 3, 1)
	so := cell(t, tab, 4, 1)
	if skew >= naive/2 {
		t.Errorf("skew tier spatial χ² %.5f not well below naive %.5f", skew, naive)
	}
	if so >= naive/2 {
		t.Errorf("second-order tier spatial χ² %.5f not well below naive %.5f", so, naive)
	}
	// Gestalt similarity should be high for every tier (same references,
	// similar error burden).
	for row := 0; row < 5; row++ {
		if g := cell(t, tab, row, 3); g < 0.80 {
			t.Errorf("row %d gestalt similarity %.4f too low", row, g)
		}
	}
}

func TestExtAging(t *testing.T) {
	tab := ExtAging(Scale{Clusters: 200, Seed: 11})
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Accuracy decays with storage time; aggregate rate grows.
	first := cell(t, tab, 0, 2)
	last := cell(t, tab, 5, 2)
	if last >= first {
		t.Errorf("per-strand accuracy did not decay with age: %v -> %v", first, last)
	}
	if cell(t, tab, 5, 1) <= cell(t, tab, 0, 1) {
		t.Error("aggregate error did not grow with age")
	}
}
