package experiments

import (
	"fmt"
	"strings"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
)

// runRichReferences builds references with frequent homopolymer runs, the
// workload where run-aware error modelling matters.
func runRichReferences(n, length int, seed uint64) []dna.Strand {
	r := rng.New(seed)
	refs := make([]dna.Strand, n)
	for i := range refs {
		var sb strings.Builder
		for sb.Len() < length {
			b := dna.Base(r.Intn(dna.NumBases))
			runLen := 1 + r.Intn(5)
			for k := 0; k < runLen && sb.Len() < length; k++ {
				sb.WriteByte(b.Byte())
			}
		}
		refs[i] = dna.Strand(sb.String())
	}
	return refs
}

// AblationHomopolymer measures the homopolymer error boost (§1.2; a
// deficiency §2.2.3 notes DNASimulator shares with the naive model): a
// boosted ground truth is profiled, and the measured in-run/out-run error
// ratio is compared across channels with and without run-aware modelling.
func AblationHomopolymer(scale Scale) (Table, error) {
	t := Table{
		ID:      "abl.homopolymer",
		Title:   "Homopolymer error boost: measured in-run/out-run error ratio",
		Headers: []string{"Channel", "Homopolymer error ratio", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	refs := runRichReferences(scale.Clusters, 110, scale.Seed+1000)
	base := channel.NewNaive("flat (no run model)", channel.NanoporeMix(0.059))
	boosted, err := channel.NewHomopolymerModel(
		channel.NewNaive("run-aware (boost ×3)", channel.NanoporeMix(0.059)), 3, 3)
	if err != nil {
		return Table{}, err
	}
	for i, ch := range []channel.Channel{base, boosted} {
		sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(6)}
		ds := sim.Simulate(ch.Name(), refs, scale.Seed+1001+uint64(i))
		p, err := profile.Profile(ds, profile.Options{})
		if err != nil {
			return Table{}, err
		}
		ps, pc := reconstructAccuracy(recon.NewIterative(), ds)
		t.Rows = append(t.Rows, []string{
			ch.Name(), fmt.Sprintf("%.2f", p.HomopolymerErrorRatio()), pct(ps), pct(pc),
		})
	}
	return t, nil
}

// AblationCoverageModels compares the coverage models (§2.2.3 notes
// DNASimulator assumes uniform coverage; real coverage is overdispersed
// and PCR-biased): identical channel, identical mean coverage, different
// coverage shapes — erasures and low-coverage clusters drag accuracy.
func AblationCoverageModels(scale Scale) Table {
	t := Table{
		ID:      "abl.coverage",
		Title:   "Coverage model shape at equal mean (channel fixed, mean ≈ 8)",
		Headers: []string{"Coverage model", "Erasures", "Min", "Max", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+1100)
	ch := channel.NewNaive("n", channel.NanoporeMix(0.059))
	models := []channel.CoverageModel{
		channel.FixedCoverage(8),
		channel.PoissonCoverage(8),
		channel.NegBinCoverage{Mean: 8, Dispersion: 2},
		channel.NormalCoverage{Mean: 8, SD: 3},
		channel.GCBiasCoverage{Base: channel.FixedCoverage(8), Strength: 1.5},
	}
	for i, cov := range models {
		sim := channel.Simulator{Channel: ch, Coverage: cov}
		ds := sim.Simulate(cov.Name(), refs, scale.Seed+1101+uint64(i))
		stats := ds.ComputeStats()
		ps, pc := reconstructAccuracy(recon.NewIterative(), ds)
		t.Rows = append(t.Rows, []string{
			cov.Name(),
			fmt.Sprintf("%d", stats.Erasures),
			fmt.Sprintf("%d", stats.MinCoverage),
			fmt.Sprintf("%d", stats.MaxCoverage),
			pct(ps), pct(pc),
		})
	}
	return t
}

// AblationAlgorithms is the full algorithm roster on the real data — the
// downstream-user view of the library: every reconstructor at N=5 and N=6.
func AblationAlgorithms(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "abl.algorithms",
		Title:   "Every reconstruction algorithm on the real data",
		Headers: []string{"Algorithm", "N=5 per-strand (%)", "N=5 per-char (%)", "N=6 per-strand (%)", "N=6 per-char (%)"},
	}
	ds5, err := wb.FixedCoverage(5, 10)
	if err != nil {
		return Table{}, err
	}
	ds6, err := wb.FixedCoverage(6, 10)
	if err != nil {
		return Table{}, err
	}
	for _, alg := range recon.All() {
		ps5, pc5 := reconstructAccuracy(alg, ds5)
		ps6, pc6 := reconstructAccuracy(alg, ds6)
		t.Rows = append(t.Rows, []string{alg.Name(), pct(ps5), pct(pc5), pct(ps6), pct(pc6)})
	}
	return t, nil
}
