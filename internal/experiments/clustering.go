package experiments

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/cluster"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
	"dnastore/internal/wetlab"
)

// ExtClustering quantifies the §3.1 evaluation choice between perfect
// (pseudo-)clustering and imperfect clustering: the same reads are
// reconstructed twice — once grouped by ground truth, once re-clustered
// from the shuffled unlabeled pool — and the introduced accuracy loss is
// the clustering algorithm's characteristic error contribution.
func ExtClustering(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "ext.clustering",
		Title:   "Perfect (pseudo-)clustering vs re-clustered unlabeled pool (N=6)",
		Headers: []string{"Clustering", "Purity", "Clusters", "Reads kept", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	perfect, err := wb.FixedCoverage(6, 10)
	if err != nil {
		return Table{}, err
	}

	pool, labels := cluster.LabeledPool(perfect)
	r := rng.New(wb.Scale.Seed + 1400)
	r.Shuffle(len(pool), func(i, j int) {
		pool[i], pool[j] = pool[j], pool[i]
		labels[i], labels[j] = labels[j], labels[i]
	})
	idx := cluster.GreedyIndices(pool, cluster.Config{})
	purity, err := cluster.Purity(idx, labels)
	if err != nil {
		return Table{}, err
	}
	groups := make([][]dna.Strand, len(idx))
	for i, members := range idx {
		for _, m := range members {
			groups[i] = append(groups[i], pool[m])
		}
	}
	reclustered := cluster.AssignToReferences(groups, perfect.References(), 40)

	rows := []struct {
		name   string
		purity string
		ds     *dataset.Dataset
	}{
		{"perfect", "1.000", perfect},
		{"greedy re-clustered", fmt.Sprintf("%.3f", purity), reclustered},
	}
	for _, row := range rows {
		ps, pc := reconstructAccuracy(recon.NewIterative(), row.ds)
		t.Rows = append(t.Rows, []string{
			row.name, row.purity,
			fmt.Sprintf("%d", row.ds.NumClusters()),
			fmt.Sprintf("%d", row.ds.NumReads()),
			pct(ps), pct(pc),
		})
	}
	return t, nil
}

// ExtErrorScale verifies the calibration method is not tuned to one error
// regime (§4.3's robustness concern): for each aggregate error rate, a
// fresh ground truth is generated, profiled and re-simulated with the full
// tier; the fitted aggregate and the BMA per-strand accuracy gap show
// whether the method transfers.
func ExtErrorScale(scale Scale) (Table, error) {
	t := Table{
		ID:      "ext.errorscale",
		Title:   "Calibration robustness across error regimes (full tier, N=5)",
		Headers: []string{"True rate", "Fitted aggregate", "Real BMA ps (%)", "Sim BMA ps (%)", "Gap (pp)"},
	}
	for i, rate := range []float64{0.03, 0.059, 0.09, 0.12} {
		cfg := wetlab.DefaultConfig()
		cfg.NumClusters = scale.Clusters
		cfg.ErrorRate = rate
		cfg.Seed = scale.Seed + 1500 + uint64(i)
		real, err := wetlab.Generate(cfg)
		if err != nil {
			return Table{}, err
		}
		p, err := profile.Profile(real, profile.Options{})
		if err != nil {
			return Table{}, err
		}
		shuffled := real.Clone()
		shuffled.ShuffleReads(rng.New(cfg.Seed + 7))
		realN5, err := shuffled.SubsampleFixed(5, 10)
		if err != nil {
			return Table{}, err
		}
		model := p.SecondOrderModel("fit", 10)
		sim := channel.Simulator{Channel: model, Coverage: channel.FixedCoverage(5)}.
			Simulate("fit", real.References(), cfg.Seed+9)
		realPS, _ := reconstructAccuracy(recon.NewBMA(), realN5)
		simPS, _ := reconstructAccuracy(recon.NewBMA(), sim)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", rate),
			fmt.Sprintf("%.4f", p.AggregateRate()),
			pct(realPS), pct(simPS),
			fmt.Sprintf("%.2f", simPS-realPS),
		})
	}
	return t, nil
}
