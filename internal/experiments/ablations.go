package experiments

import (
	"fmt"

	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dist"
	"dnastore/internal/metrics"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
)

// ExtTwoWayIterative evaluates the paper's §4.3 proposal: two-way
// execution of the Iterative algorithm. It compares one-way Iterative,
// the anchored two-way variant and BMA across the regimes where the
// question matters: uniform errors, end-skewed errors, and the real
// (terminal-skewed) data.
func ExtTwoWayIterative(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "ext4.3",
		Title:   "Two-way execution of the Iterative algorithm (§4.3 extension)",
		Headers: []string{"Data", "Algorithm", "Per-strand (%)", "Per-char (%)"},
	}
	endSkew := dist.TerminalSkew{StartPositions: 2, EndPositions: 1, StartBoost: 1, EndBoost: 6}
	refs := wb.Real.References()
	uniform := channel.Simulator{
		Channel:  channel.NewNaive("uniform p=0.059", channel.NanoporeMix(0.059)),
		Coverage: channel.FixedCoverage(5),
	}.Simulate("uniform p=0.059", refs, wb.Scale.Seed+500)
	skewed := channel.Simulator{
		Channel:  channel.NewNaive("end-skewed p=0.059", channel.NanoporeMix(0.059)).WithSpatial(endSkew),
		Coverage: channel.FixedCoverage(5),
	}.Simulate("end-skewed p=0.059", refs, wb.Scale.Seed+501)
	real, err := wb.FixedCoverage(5, 10)
	if err != nil {
		return Table{}, err
	}
	real.Name = "Nanopore@N=5"

	algs := []recon.Reconstructor{recon.NewIterative(), recon.NewTwoWayIterative(), recon.NewBMA()}
	for _, ds := range []*dataset.Dataset{uniform, skewed, real} {
		for _, alg := range algs {
			ps, pc := reconstructAccuracy(alg, ds)
			t.Rows = append(t.Rows, []string{ds.Name, alg.Name(), pct(ps), pct(pc)})
		}
	}
	return t, nil
}

// AblationStages evaluates the §4.2 recommendation: a composable
// multi-stage pipeline (synthesis → PCR → storage → sequencing) versus a
// single aggregate-error pass at the same total error rate.
func AblationStages(scale Scale) Table {
	t := Table{
		ID:      "abl.stages",
		Title:   "Single-pass aggregate channel vs composable multi-stage pipeline (equal total error)",
		Headers: []string{"Channel", "Aggregate rate", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+600)
	single := channel.NewNaive("single-pass", channel.NanoporeMix(0.059))
	pipe := channel.NewStoragePipeline("4-stage pipeline", 0.059, 10)
	for _, ch := range []channel.Channel{single, pipe} {
		sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(6)}
		ds := sim.Simulate(ch.Name(), refs, scale.Seed+601)
		ps, pc := reconstructAccuracy(recon.NewIterative(), ds)
		agg := 0.0
		switch m := ch.(type) {
		case interface{ AggregateRate() (float64, bool) }:
			// Pipelines report whether the sum covers every stage; both
			// channels here are fully reporting, so the flag is unused.
			agg, _ = m.AggregateRate()
		case interface{ AggregateRate() float64 }:
			agg = m.AggregateRate()
		}
		t.Rows = append(t.Rows, []string{ch.Name(), fmt.Sprintf("%.4f", agg), pct(ps), pct(pc)})
	}
	return t
}

// AblationBMAWindow sweeps the BMA look-ahead window — a design choice
// DESIGN.md flags for ablation.
func AblationBMAWindow(scale Scale) Table {
	t := Table{
		ID:      "abl.window",
		Title:   "BMA look-ahead window size (uniform p=0.059, N=5)",
		Headers: []string{"Window", "Per-strand (%)", "Per-char (%)"},
	}
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+700)
	ds := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.NanoporeMix(0.059)),
		Coverage: channel.FixedCoverage(5),
	}.Simulate("w-sweep", refs, scale.Seed+701)
	for _, w := range []int{1, 2, 3, 5, 8} {
		ps, pc := reconstructAccuracy(recon.BMA{Window: w}, ds)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", w), pct(ps), pct(pc)})
	}
	return t
}

// AblationSplice compares the two-way splice rules: BMA-style fixed
// mid-point concatenation versus the agreement-anchored splice.
func AblationSplice(scale Scale) Table {
	t := Table{
		ID:      "abl.splice",
		Title:   "Two-way splice rule: fixed mid-point vs agreement anchor (uniform p=0.059, N=5)",
		Headers: []string{"Splice", "Per-strand (%)", "Per-char (%)"},
	}
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+800)
	ds := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.NanoporeMix(0.059)),
		Coverage: channel.FixedCoverage(5),
	}.Simulate("splice-sweep", refs, scale.Seed+801)
	plain := recon.TwoWayIterative{PlainSplice: true}
	anchored := recon.NewTwoWayIterative()
	for _, alg := range []recon.Reconstructor{plain, anchored} {
		ps, pc := reconstructAccuracy(alg, ds)
		t.Rows = append(t.Rows, []string{alg.Name(), pct(ps), pct(pc)})
	}
	return t
}

// AblationScriptPolicy measures how the Appendix B tie-break policy
// (deterministic vs randomized) shifts the fitted conditional
// parameters — the estimation-side ablation DESIGN.md calls out.
func AblationScriptPolicy(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "abl.script",
		Title:   "Edit-script tie-break policy and fitted parameters",
		Headers: []string{"Policy", "Aggregate", "Sub rate", "Ins rate", "Del rate", "Long-del p"},
	}
	det := wb.Profile
	rnd, err := profile.Profile(wb.Real, profile.Options{RandomizeScripts: true, Seed: wb.Scale.Seed + 900})
	if err != nil {
		return Table{}, err
	}
	for _, row := range []struct {
		name string
		p    *profile.ErrorProfile
	}{{"deterministic", det}, {"randomized", rnd}} {
		r := row.p.Rates()
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%.4f", row.p.AggregateRate()),
			fmt.Sprintf("%.4f", r.Sub),
			fmt.Sprintf("%.4f", r.Ins),
			fmt.Sprintf("%.4f", r.Del),
			fmt.Sprintf("%.4f", row.p.LongDeletion().Prob),
		})
	}
	return t, nil
}

// AblationAffineExtraction compares the fitted error statistics under
// unit-cost edit scripts (the paper's Appendix B) and affine-gap scripts
// (Gotoh): affine extraction keeps burst deletions contiguous, so the
// long-deletion statistics it fits are at least as concentrated.
func AblationAffineExtraction(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "abl.affine",
		Title:   "Edit-script cost model and fitted burst statistics",
		Headers: []string{"Cost model", "Aggregate", "Long-del p", "Long-del mean len", "Single-del rate"},
	}
	affine, err := profile.Profile(wb.Real, profile.Options{Affine: true})
	if err != nil {
		return Table{}, err
	}
	for _, row := range []struct {
		name string
		p    *profile.ErrorProfile
	}{{"unit (Appendix B)", wb.Profile}, {"affine (Gotoh)", affine}} {
		ld := row.p.LongDeletion()
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%.4f", row.p.AggregateRate()),
			fmt.Sprintf("%.4f", ld.Prob),
			fmt.Sprintf("%.2f", ld.MeanLen()),
			fmt.Sprintf("%.4f", row.p.Rates().Del-float64(row.p.LongDelBases)/float64(row.p.RefBases)),
		})
	}
	return t, nil
}

// AblationResidualCensus verifies the §3.4.1 residual-error claim: after
// Iterative reconstruction the remaining errors are deletion-dominant.
func AblationResidualCensus(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "abl.census",
		Title:   "Residual error types after reconstruction (Nanopore@N=5)",
		Headers: []string{"Algorithm", "Sub (%)", "Del (%)", "Ins (%)", "Total errors"},
	}
	ds, err := wb.FixedCoverage(5, 10)
	if err != nil {
		return Table{}, err
	}
	for _, alg := range []recon.Reconstructor{recon.NewIterative(), recon.NewBMA()} {
		out := recon.ReconstructDataset(alg, ds)
		c := metrics.CensusErrors(ds.References(), out)
		t.Rows = append(t.Rows, []string{
			alg.Name(),
			pct(100 * c.Fraction(align.Sub)),
			pct(100 * c.Fraction(align.Del)),
			pct(100 * c.Fraction(align.Ins)),
			fmt.Sprintf("%d", c.Total()),
		})
	}
	return t, nil
}
