package experiments

import (
	"fmt"

	"dnastore/internal/metrics"
	"dnastore/internal/recon"
)

// AppendixC reproduces the appendix C.4–C.8 figure set: the
// post-reconstruction Hamming and gestalt-aligned error profiles of BMA
// and Iterative on the real data and on *each* simulator tier at the
// given coverage — the per-tier panels that let the eye compare, column
// by column, how each added parameter reshapes the residual error
// distribution toward the real data's.
func AppendixC(wb *Workbench, n int) ([]Series, error) {
	sets, err := progressiveDatasets(wb, n)
	if err != nil {
		return nil, err
	}
	length := wb.Profile.StrandLen
	algs := []recon.Reconstructor{recon.NewIterative(), recon.NewBMA()}
	out := make([]Series, 0, len(sets))
	for i, ds := range sets {
		out = append(out, Series{
			ID:      fmt.Sprintf("figC.%d(N=%d)", i+4, n),
			Title:   fmt.Sprintf("Post-reconstruction analysis: %s at N = %d", ds.Name, n),
			XLabel:  "position",
			X:       positionAxis(length),
			Columns: postReconProfiles(ds, length, algs),
		})
	}
	return out, nil
}

// AppendixCSummary condenses the appendix panels into one table: for each
// tier and algorithm, where the residual error mass lives (strand thirds)
// and how far the profile sits from the real data's (χ² distance of
// normalised gestalt profiles). The final tier should carry the smallest
// distances.
func AppendixCSummary(wb *Workbench, n int) (Table, error) {
	t := Table{
		ID:      fmt.Sprintf("figC.summary(N=%d)", n),
		Title:   fmt.Sprintf("Residual gestalt error distribution by tier at N = %d", n),
		Headers: []string{"Data", "Algorithm", "First third", "Middle third", "Last third", "χ² vs real"},
	}
	sets, err := progressiveDatasets(wb, n)
	if err != nil {
		return Table{}, err
	}
	length := wb.Profile.StrandLen
	algs := []recon.Reconstructor{recon.NewIterative(), recon.NewBMA()}

	// Real-data reference profiles per algorithm, for the χ² column.
	realProfiles := make([][]float64, len(algs))
	for ai, alg := range algs {
		cols := postReconProfiles(sets[0], length, []recon.Reconstructor{alg})
		realProfiles[ai] = metrics.Normalize(cols[1].Y) // gestalt column
	}

	for _, ds := range sets {
		for ai, alg := range algs {
			cols := postReconProfiles(ds, length, []recon.Reconstructor{alg})
			g := cols[1].Y
			third := length / 3
			sum := func(lo, hi int) float64 {
				s := 0.0
				for i := lo; i < hi && i < len(g); i++ {
					s += g[i]
				}
				return s
			}
			chi := metrics.ChiSquare(realProfiles[ai], metrics.Normalize(g))
			t.Rows = append(t.Rows, []string{
				ds.Name, alg.Name(),
				fmt.Sprintf("%.3f", sum(0, third)),
				fmt.Sprintf("%.3f", sum(third, 2*third)),
				fmt.Sprintf("%.3f", sum(2*third, length+1)),
				fmt.Sprintf("%.4f", chi),
			})
		}
	}
	return t, nil
}

// channelTierNames lists the tier labels in evaluation order; exposed for
// table-reading tests.
func channelTierNames(wb *Workbench) []string {
	out := []string{"Nanopore"}
	for _, tier := range wb.Profile.Tiers(10) {
		out = append(out, tier.Name())
	}
	return out
}
