package experiments

import (
	"strings"
	"testing"
)

func TestSeriesSVG(t *testing.T) {
	s := Series{
		ID: "fig-test", Title: "a title with <markup> & \"quotes\"", XLabel: "position",
		X: []float64{0, 1, 2, 3},
		Columns: []SeriesColumn{
			{Label: "curve-a", Y: []float64{0, 1, 4, 9}},
			{Label: "curve-b", Y: []float64{9, 4, 1, 0}},
		},
	}
	svg := s.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "curve-a", "curve-b", "position",
		"&lt;markup&gt;", "&amp;", "&quot;", "<path",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "<markup>") {
		t.Error("unescaped markup in SVG")
	}
	// Two curves → two paths.
	if n := strings.Count(svg, "<path"); n != 2 {
		t.Errorf("got %d paths, want 2", n)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("non-finite coordinates in SVG")
	}
}

func TestSeriesSVGDegenerate(t *testing.T) {
	// Empty and constant series must not divide by zero.
	for _, s := range []Series{
		{ID: "empty"},
		{ID: "flat", X: []float64{1, 1}, Columns: []SeriesColumn{{Label: "c", Y: []float64{0, 0}}}},
	} {
		svg := s.SVG()
		if !strings.Contains(svg, "</svg>") {
			t.Errorf("%s: malformed SVG", s.ID)
		}
		if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
			t.Errorf("%s: non-finite coordinates", s.ID)
		}
	}
}
