package experiments

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dist"
	"dnastore/internal/metrics"
	"dnastore/internal/recon"
)

// uniformDataset simulates the §3.4 sensitivity workload: equal-mix IDS
// errors at aggregate rate p, spread by the given spatial distribution,
// at fixed coverage n.
func uniformDataset(scale Scale, spatial dist.Spatial, p float64, n int, salt uint64) *dataset.Dataset {
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+salt)
	ch := channel.NewNaive(fmt.Sprintf("p=%.2f/%s", p, spatial.Name()), channel.EqualMix(p))
	if spatial.Name() != "uniform" {
		ch = ch.WithSpatial(spatial)
	}
	sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(n)}
	return sim.Simulate(ch.Name(), refs, scale.Seed+salt+1)
}

// Figure37Accuracy reproduces the accuracy sweep behind Fig 3.7: BMA and
// Iterative at uniform spatial distribution, p ∈ {0.03..0.15} and
// N ∈ {5, 6, 10}.
func Figure37Accuracy(scale Scale) Table {
	t := Table{
		ID:      "fig3.7-accuracy",
		Title:   "Accuracy at uniform spatial distribution across error rates and coverages",
		Headers: []string{"p", "N", "BMA per-strand (%)", "BMA per-char (%)", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	for _, p := range []float64{0.03, 0.06, 0.09, 0.12, 0.15} {
		for _, n := range []int{5, 6, 10} {
			ds := uniformDataset(scale, dist.Uniform{}, p, n, uint64(1000*p)+uint64(n))
			cells := []string{fmt.Sprintf("%.2f", p), fmt.Sprintf("%d", n)}
			for _, alg := range []recon.Reconstructor{recon.NewBMA(), recon.NewIterative()} {
				ps, pc := reconstructAccuracy(alg, ds)
				cells = append(cells, pct(ps), pct(pc))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	return t
}

// Figure37Profiles reproduces Fig 3.7's profile panels: post-
// reconstruction Hamming and gestalt profiles of BMA and Iterative at
// p̄ = 0.15, uniform distribution, N = 5.
func Figure37Profiles(scale Scale) Series {
	ds := uniformDataset(scale, dist.Uniform{}, 0.15, 5, 42)
	return Series{
		ID:      "fig3.7",
		Title:   "Post-reconstruction analysis of p̄=0.15 data with uniform spatial distribution (N=5)",
		XLabel:  "position",
		X:       positionAxis(110),
		Columns: postReconProfiles(ds, 110, []recon.Reconstructor{recon.NewIterative(), recon.NewBMA()}),
	}
}

// Figure38 reproduces Fig 3.8: BMA's post-reconstruction gestalt-aligned
// errors at p̄ = 0.15 across coverages 5, 6 and 10 — at higher coverage
// the residual errors concentrate toward the middle splice point.
func Figure38(scale Scale) Series {
	s := Series{
		ID:     "fig3.8",
		Title:  "Post-reconstruction gestalt-aligned errors of p̄=0.15 data for BMA",
		XLabel: "position",
		X:      positionAxis(110),
	}
	for _, n := range []int{5, 6, 10} {
		ds := uniformDataset(scale, dist.Uniform{}, 0.15, n, 50+uint64(n))
		out := recon.ReconstructDataset(recon.NewBMA(), ds)
		g := metrics.GestaltProfile(ds.References(), out, 110)
		s.Columns = append(s.Columns, SeriesColumn{Label: fmt.Sprintf("N=%d", n), Y: g.Rates()})
	}
	return s
}

// Figure39 reproduces Fig 3.9: the pre-reconstruction spatial error
// distributions themselves — uniform, A-shaped (triangular a=0, b=0.30,
// mean 0.15) and V-shaped — measured back from simulated reads.
func Figure39(scale Scale) Series {
	s := Series{
		ID:     "fig3.9",
		Title:  "Pre-reconstruction spatial distributions at p̄=0.15",
		XLabel: "position",
		X:      positionAxis(110),
	}
	for _, spatial := range []dist.Spatial{dist.Uniform{}, dist.TriangularA{}, dist.TriangularV{}} {
		ds := uniformDataset(scale, spatial, 0.15, 3, 60+uint64(len(spatial.Name())))
		refs, reads := clustersOf(ds)
		g := metrics.ClusterGestaltProfile(refs, reads, 110)
		s.Columns = append(s.Columns, SeriesColumn{Label: spatial.Name(), Y: g.Rates()})
	}
	return s
}

// Figure310Accuracy reproduces the accuracy half of Fig 3.10: BMA on
// A-shaped versus V-shaped error distributions at p̄ = 0.15 — the paper's
// headline sensitivity result that spatial shape alone, at identical
// aggregate error, decides reconstruction accuracy.
func Figure310Accuracy(scale Scale, n int) Table {
	t := Table{
		ID:      "fig3.10-accuracy",
		Title:   fmt.Sprintf("BMA accuracy under skewed spatial distributions (p̄=0.15, N=%d)", n),
		Headers: []string{"Distribution", "BMA per-strand (%)", "BMA per-char (%)"},
	}
	for _, spatial := range []dist.Spatial{dist.Uniform{}, dist.TriangularA{}, dist.TriangularV{}} {
		ds := uniformDataset(scale, spatial, 0.15, n, 70+uint64(len(spatial.Name())))
		ps, pc := reconstructAccuracy(recon.NewBMA(), ds)
		t.Rows = append(t.Rows, []string{spatial.Name(), pct(ps), pct(pc)})
	}
	return t
}

// Figure310Profiles reproduces the profile panels of Fig 3.10: BMA's
// post-reconstruction Hamming and gestalt profiles on the A- and V-shaped
// data.
func Figure310Profiles(scale Scale, n int) Series {
	s := Series{
		ID:     "fig3.10",
		Title:  fmt.Sprintf("Post-reconstruction analysis for BMA on skewed curves (p̄=0.15, N=%d)", n),
		XLabel: "position",
		X:      positionAxis(110),
	}
	for _, spatial := range []dist.Spatial{dist.TriangularA{}, dist.TriangularV{}} {
		ds := uniformDataset(scale, spatial, 0.15, n, 80+uint64(len(spatial.Name())))
		out := recon.ReconstructDataset(recon.NewBMA(), ds)
		h := metrics.HammingProfile(ds.References(), out, 110)
		g := metrics.GestaltProfile(ds.References(), out, 110)
		s.Columns = append(s.Columns,
			SeriesColumn{Label: spatial.Name() + " hamming", Y: h.Rates()},
			SeriesColumn{Label: spatial.Name() + " gestalt", Y: g.Rates()},
		)
	}
	return s
}
