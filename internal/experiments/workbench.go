// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a function from a Workbench (the shared
// "real data" + calibration state) or a Scale to a rendered Table or
// Series; cmd/dnabench and the top-level benchmarks drive them.
//
// See DESIGN.md §4 for the experiment ↔ module index and EXPERIMENTS.md
// for paper-vs-measured numbers.
package experiments

import (
	"context"
	"fmt"

	"dnastore/internal/dataset"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
	"dnastore/internal/wetlab"
)

// Scale sets the experiment size. The paper's full scale is 10,000
// clusters; tests and quick benchmark runs use a few hundred, which
// preserves every qualitative result at ~2% accuracy noise.
type Scale struct {
	// Clusters is the number of reference strands.
	Clusters int
	// Seed drives every random choice.
	Seed uint64
}

// FullScale is the paper's dataset size.
func FullScale() Scale { return Scale{Clusters: 10000, Seed: 1} }

// QuickScale is large enough for stable orderings at a fraction of the
// cost; used by tests and default benchmark runs.
func QuickScale() Scale { return Scale{Clusters: 600, Seed: 1} }

// Workbench holds the shared state most experiments start from: the
// synthetic "real Nanopore" dataset, its shuffled fixed-coverage view
// (§3.2 protocol), and the error profile fitted from its reads.
type Workbench struct {
	// Scale is the size everything was generated at.
	Scale Scale
	// Real is the wetlab stand-in dataset (perfectly clustered).
	Real *dataset.Dataset
	// Shuffled is Real with reads shuffled once, reused for every
	// fixed-coverage subsample so coverages share read prefixes.
	Shuffled *dataset.Dataset
	// Profile is the error profile extracted from Real.
	Profile *profile.ErrorProfile
}

// NewWorkbench generates the wetlab dataset at the given scale and
// profiles it.
func NewWorkbench(scale Scale) (*Workbench, error) {
	return NewWorkbenchCtx(context.Background(), scale)
}

// NewWorkbenchCtx is NewWorkbench under a context, so long full-scale
// generations can be interrupted (SIGINT in cmd/dnabench) between
// clusters instead of running to completion.
func NewWorkbenchCtx(ctx context.Context, scale Scale) (*Workbench, error) {
	if scale.Clusters <= 0 {
		return nil, fmt.Errorf("experiments: scale must have positive cluster count")
	}
	cfg := wetlab.DefaultConfig()
	cfg.NumClusters = scale.Clusters
	cfg.Seed = scale.Seed
	real, err := wetlab.GenerateCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	prof, err := profile.Profile(real, profile.Options{})
	if err != nil {
		return nil, err
	}
	shuffled := real.Clone()
	shuffled.ShuffleReads(rng.New(scale.Seed + 17))
	return &Workbench{Scale: scale, Real: real, Shuffled: shuffled, Profile: prof}, nil
}

// FixedCoverage returns the §3.2 fixed-coverage view of the real data:
// clusters with at least minCoverage reads, truncated to their first n
// after the one-time shuffle.
func (wb *Workbench) FixedCoverage(n, minCoverage int) (*dataset.Dataset, error) {
	ds, err := wb.Shuffled.SubsampleFixed(n, minCoverage)
	if err != nil {
		return nil, err
	}
	ds.Name = fmt.Sprintf("Nanopore@N=%d", n)
	return ds, nil
}

// reconstructAccuracy runs one algorithm over a dataset and returns its
// accuracy pair.
func reconstructAccuracy(alg recon.Reconstructor, ds *dataset.Dataset) (perStrand, perChar float64) {
	out := recon.ReconstructDataset(alg, ds)
	acc := accuracyOf(ds, out)
	return acc.PerStrand, acc.PerChar
}
