package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	wbOnce sync.Once
	wbMem  *Workbench
	wbErr  error
)

// testWorkbench builds one shared workbench for the whole test run.
func testWorkbench(t *testing.T) *Workbench {
	t.Helper()
	wbOnce.Do(func() {
		wbMem, wbErr = NewWorkbench(Scale{Clusters: 500, Seed: 1})
	})
	if wbErr != nil {
		t.Fatal(wbErr)
	}
	return wbMem
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: cell (%d,%d) out of range", tab.ID, row, col)
	}
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func TestWorkbenchRejectsBadScale(t *testing.T) {
	if _, err := NewWorkbench(Scale{}); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestTable11Static(t *testing.T) {
	tab := Table11()
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "Nanopore") {
		t.Error("render missing Nanopore")
	}
	if !strings.Contains(tab.CSV(), "Sanger") {
		t.Error("CSV missing Sanger")
	}
}

func TestTable21Direction(t *testing.T) {
	wb := testWorkbench(t)
	tab := Table21(wb)
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Paper's core finding: simulated per-strand accuracy consistently
	// EXCEEDS real data for BMA (col 2) and Iterative (col 4).
	realBMA, realIter := cell(t, tab, 0, 2), cell(t, tab, 0, 4)
	for row := 1; row < 4; row++ {
		if simBMA := cell(t, tab, row, 2); simBMA <= realBMA {
			t.Errorf("row %d (%s): simulated BMA %.2f not above real %.2f", row, tab.Rows[row][0], simBMA, realBMA)
		}
		if simIter := cell(t, tab, row, 4); simIter <= realIter {
			t.Errorf("row %d (%s): simulated Iterative %.2f not above real %.2f", row, tab.Rows[row][0], simIter, realIter)
		}
	}
	// DivBMA collapses on the indel-heavy Nanopore regime (paper: 0.4-3%).
	for row := 0; row < 4; row++ {
		if div := cell(t, tab, row, 3); div > 40 {
			t.Errorf("row %d: DivBMA %.2f unexpectedly high", row, div)
		}
	}
}

func TestTable22Direction(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := Table22(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Rows alternate real, simulated per coverage. Per-strand accuracy
	// (cols 2 and 4) shows the static-profile optimism strictly; per-char
	// (cols 3 and 5) is allowed to sit near parity — skewed real errors
	// cluster at terminals and damage few characters per failing strand,
	// a divergence from the paper's hard-coded-dictionary baseline that
	// EXPERIMENTS.md documents.
	for pair := 0; pair < 2; pair++ {
		realRow, simRow := 2*pair, 2*pair+1
		for _, col := range []int{2, 4} {
			if cell(t, tab, simRow, col) <= cell(t, tab, realRow, col) {
				t.Errorf("coverage pair %d col %d: simulated %.2f not above real %.2f",
					pair, col, cell(t, tab, simRow, col), cell(t, tab, realRow, col))
			}
		}
		for _, col := range []int{3, 5} {
			if cell(t, tab, simRow, col) <= cell(t, tab, realRow, col)-2 {
				t.Errorf("coverage pair %d col %d: simulated per-char %.2f far below real %.2f",
					pair, col, cell(t, tab, simRow, col), cell(t, tab, realRow, col))
			}
		}
	}
	// Accuracy grows with coverage on the real data.
	if cell(t, tab, 2, 2) <= cell(t, tab, 0, 2) {
		t.Error("real BMA accuracy did not improve from N=5 to N=6")
	}
}

func TestTable31Convergence(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := Table31(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Row order: Nanopore, Naive, +Cond, +Skew, +2nd-order.
	realBMAps, realBMApc := cell(t, tab, 0, 1), cell(t, tab, 0, 2)
	naiveBMAps := cell(t, tab, 1, 1)
	finalBMAps, finalBMApc := cell(t, tab, 4, 1), cell(t, tab, 4, 2)

	// The paper's headline: each tier moves BMA closer to real data; the
	// final tier's gap is far below the naive tier's gap.
	naiveGap := naiveBMAps - realBMAps
	finalGap := finalBMAps - realBMAps
	if naiveGap <= 0 {
		t.Fatalf("naive simulator (%.2f) not above real (%.2f)?", naiveBMAps, realBMAps)
	}
	if finalGap >= naiveGap*0.8 {
		t.Errorf("full model BMA gap %.2f did not shrink vs naive gap %.2f", finalGap, naiveGap)
	}
	if absF(finalBMApc-realBMApc) > 6 {
		t.Errorf("full model per-char %.2f too far from real %.2f", finalBMApc, realBMApc)
	}

	// The Iterative over-correction: the skew tier drops Iterative
	// accuracy to or below the real data's (paper: 35.36 vs 66.70).
	realIter := cell(t, tab, 0, 3)
	naiveIter := cell(t, tab, 1, 3)
	skewIter := cell(t, tab, 3, 3)
	if naiveIter <= realIter {
		t.Errorf("naive Iterative %.2f not above real %.2f", naiveIter, realIter)
	}
	if skewIter >= naiveIter {
		t.Errorf("skew tier did not reduce Iterative accuracy (%.2f vs naive %.2f)", skewIter, naiveIter)
	}
}

func TestTable32SameShapeAsTable31(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := Table32(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// N=6 accuracies exceed N=5 for the real data rows.
	tab5, err := Table31(wb)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tab, 0, 1) <= cell(t, tab5, 0, 1)-3 {
		t.Errorf("real BMA at N=6 (%.2f) below N=5 (%.2f)", cell(t, tab, 0, 1), cell(t, tab5, 0, 1))
	}
}

func TestFigure32Shape(t *testing.T) {
	wb := testWorkbench(t)
	s := Figure32(wb)
	if len(s.Columns) != 2 {
		t.Fatalf("got %d columns", len(s.Columns))
	}
	ham, ges := s.Columns[0].Y, s.Columns[1].Y
	// Hamming grows roughly linearly. The boosted positions 0–1 seed a
	// propagation baseline that inflates the "early" region, so assert a
	// sustained rise rather than a full doubling.
	early := avg(ham[5:25])
	late := avg(ham[85:105])
	if late < 1.5*early {
		t.Errorf("hamming profile not increasing: early %v late %v", early, late)
	}
	mid := avg(ham[45:65])
	if late < mid || mid < early {
		t.Errorf("hamming profile not monotone: early %v mid %v late %v", early, mid, late)
	}
	// Gestalt is terminal-concentrated with a flat interior.
	interior := avg(ges[20:90])
	if ges[0] < 2*interior {
		t.Errorf("gestalt start %v not above interior %v", ges[0], interior)
	}
	endMass := ges[108] + ges[109] + ges[110]
	if endMass < 3*interior {
		t.Errorf("gestalt end mass %v not above interior %v", endMass, interior)
	}
}

func TestFigure33CoverageCurve(t *testing.T) {
	wb := testWorkbench(t)
	s, err := Figure33(wb)
	if err != nil {
		t.Fatal(err)
	}
	ps := s.Columns[0].Y
	if len(ps) != 10 {
		t.Fatalf("got %d coverages", len(ps))
	}
	// Rapid growth through 4-6, flattening beyond 7 (paper Fig 3.3).
	if ps[5] <= ps[0] {
		t.Errorf("accuracy did not grow: N=1 %.2f, N=6 %.2f", ps[0], ps[5])
	}
	growthEarly := ps[5] - ps[2] // N=3 -> N=6
	growthLate := ps[9] - ps[6]  // N=7 -> N=10
	if growthLate >= growthEarly {
		t.Errorf("curve did not flatten: early growth %.2f, late growth %.2f", growthEarly, growthLate)
	}
}

func TestFigure34Shapes(t *testing.T) {
	wb := testWorkbench(t)
	s, err := Figure34(wb, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 4 {
		t.Fatalf("got %d columns", len(s.Columns))
	}
	// Iterative hamming errors grow toward the end; BMA hamming peaks in
	// the middle (A-shape).
	iterH := s.Columns[0].Y
	bmaH := s.Columns[2].Y
	if avg(iterH[80:108]) <= avg(iterH[5:30]) {
		t.Error("Iterative hamming not end-weighted")
	}
	mid := avg(bmaH[40:70])
	edges := (avg(bmaH[0:15]) + avg(bmaH[95:109])) / 2
	if mid <= edges {
		t.Errorf("BMA hamming not middle-weighted: mid %v edges %v", mid, edges)
	}
}

func TestFigure36SecondOrder(t *testing.T) {
	wb := testWorkbench(t)
	tab := Figure36Table(wb)
	if len(tab.Rows) != 11 { // 10 errors + combined row
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// The combined share should be substantial (ground truth: 56%).
	combined, err := strconv.ParseFloat(tab.Rows[10][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	// The paper measures 56% on real Nanopore data, whose error taxonomy
	// includes multi-base categories; our synthetic channel produces only
	// single-base categories (20 in total), so the top-10 capture more.
	// Dominance of single-base errors is the property that must hold.
	if combined < 50 {
		t.Errorf("top-10 combined share %.2f%%, want dominant (paper: 56%%)", combined)
	}
	sp := Figure36Spatial(wb, 3)
	if len(sp.Columns) != 3 {
		t.Fatalf("got %d spatial columns", len(sp.Columns))
	}
}

func TestFigure310AShapeBeatsVShape(t *testing.T) {
	scale := Scale{Clusters: 300, Seed: 5}
	tab := Figure310Accuracy(scale, 5)
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Rows: uniform, a-shape, v-shape. Paper: BMA is MORE accurate on
	// A-shaped and LESS accurate on V-shaped than uniform.
	uniform := cell(t, tab, 0, 2)
	aShape := cell(t, tab, 1, 2)
	vShape := cell(t, tab, 2, 2)
	if aShape <= vShape {
		t.Errorf("A-shape per-char %.2f not above V-shape %.2f", aShape, vShape)
	}
	if aShape <= uniform-1 {
		t.Errorf("A-shape %.2f should be at or above uniform %.2f", aShape, uniform)
	}
	if vShape >= uniform {
		t.Errorf("V-shape %.2f should be below uniform %.2f", vShape, uniform)
	}
}

func TestExtTwoWayIterative(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := ExtTwoWayIterative(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// On the uniform and end-skewed rows the two-way variant must match
	// or beat one-way per-char (rows 0-1 = uniform iter/2way, 3-4 =
	// skewed iter/2way).
	for _, base := range []int{0, 3} {
		one := cell(t, tab, base, 3)
		two := cell(t, tab, base+1, 3)
		if two < one-0.3 {
			t.Errorf("rows %d/%d: two-way per-char %.2f below one-way %.2f", base, base+1, two, one)
		}
	}
}

func TestAblations(t *testing.T) {
	scale := Scale{Clusters: 200, Seed: 7}
	stages := AblationStages(scale)
	if len(stages.Rows) != 2 {
		t.Fatalf("stages rows = %d", len(stages.Rows))
	}
	win := AblationBMAWindow(scale)
	if len(win.Rows) != 5 {
		t.Fatalf("window rows = %d", len(win.Rows))
	}
	// Window 3 should beat window 1 (no look-ahead degenerates badly).
	if cell(t, win, 2, 2) <= cell(t, win, 0, 2) {
		t.Errorf("window 3 per-char %.2f not above window 1 %.2f", cell(t, win, 2, 2), cell(t, win, 0, 2))
	}
	splice := AblationSplice(scale)
	if len(splice.Rows) != 2 {
		t.Fatalf("splice rows = %d", len(splice.Rows))
	}
	// Anchored splice should not lose to plain splice.
	if cell(t, splice, 1, 1) < cell(t, splice, 0, 1)-1 {
		t.Errorf("anchored splice %.2f worse than plain %.2f", cell(t, splice, 1, 1), cell(t, splice, 0, 1))
	}
}

func TestAblationScriptPolicyAndCensus(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := AblationScriptPolicy(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("script rows = %d", len(tab.Rows))
	}
	// Aggregate rate is policy-invariant.
	if absF(cell(t, tab, 0, 1)-cell(t, tab, 1, 1)) > 1e-6 {
		t.Error("aggregate differs across tie-break policies")
	}
	census, err := AblationResidualCensus(wb)
	if err != nil {
		t.Fatal(err)
	}
	// Iterative row: deletions dominate residual errors (§3.4.1).
	if cell(t, census, 0, 2) < 40 {
		t.Errorf("Iterative residual deletion share %.2f%%, want dominant", cell(t, census, 0, 2))
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is slow")
	}
	wb := testWorkbench(t)
	scale := Scale{Clusters: 150, Seed: 9}
	for _, e := range Registry() {
		results, err := e.Run(wb, scale)
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(results) == 0 {
			t.Errorf("%s: no results", e.ID)
		}
		for _, r := range results {
			if r.Render() == "" || r.CSV() == "" {
				t.Errorf("%s: empty rendering", e.ID)
			}
		}
	}
	if _, err := Lookup("table2.1"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestSeriesRenderAndCSV(t *testing.T) {
	s := Series{
		ID: "x", Title: "t", XLabel: "pos",
		X:       []float64{0, 1, 2},
		Columns: []SeriesColumn{{Label: "a", Y: []float64{1, 2, 3}}},
	}
	if !strings.Contains(s.CSV(), "pos,a") {
		t.Errorf("CSV header wrong: %q", s.CSV())
	}
	if !strings.Contains(s.Render(), "#") {
		t.Error("render has no bars")
	}
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
