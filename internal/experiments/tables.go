package experiments

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/metrics"
	"dnastore/internal/recon"
	"dnastore/internal/wetlab"
)

// accuracyOf compares a dataset's references against reconstructions.
func accuracyOf(ds *dataset.Dataset, out []dna.Strand) metrics.Accuracy {
	return metrics.ComputeAccuracy(ds.References(), out)
}

// Table11 reproduces Table 1.1: the sequencing technology comparison.
func Table11() Table {
	t := Table{
		ID:      "table1.1",
		Title:   "Comparison of DNA sequencing technologies",
		Headers: []string{"Technology", "Generation", "Cost per Kb ($)", "Error rate", "Seq. length (bp)", "Read speed (h/Kb)", "Burst errors"},
	}
	for _, tech := range wetlab.Technologies() {
		burst := "no"
		if tech.BurstErrors {
			burst = "yes"
		}
		t.Rows = append(t.Rows, []string{
			tech.Name,
			fmt.Sprintf("%d", tech.Generation),
			fmt.Sprintf("%g–%g", tech.CostPerKbUSD[0], tech.CostPerKbUSD[1]),
			fmt.Sprintf("%g–%g%%", 100*tech.ErrorRate[0], 100*tech.ErrorRate[1]),
			fmt.Sprintf("%d", tech.SequencingLengthBP),
			fmt.Sprintf("%g–%g", tech.ReadSpeedHoursPerKb[0], tech.ReadSpeedHoursPerKb[1]),
			burst,
		})
	}
	return t
}

// Table21 reproduces Table 2.1: per-strand accuracy of BMA, Divider BMA
// and Iterative on real data versus the naive simulator and DNASimulator,
// under custom (matched per-cluster) and fixed coverage.
func Table21(wb *Workbench) Table {
	t := Table{
		ID:      "table2.1",
		Title:   "Per-strand accuracy of TR algorithms on real and simulated data",
		Headers: []string{"Data", "Coverage", "BMA (%)", "DivBMA (%)", "Iterative (%)"},
	}
	refs := wb.Real.References()
	custom := channel.CustomCoverage(wb.Real.Coverages())

	naive := channel.Simulator{Channel: wb.Profile.NaiveModel("Naive Simulator"), Coverage: custom}.
		Simulate("Naive Simulator", refs, wb.Scale.Seed+101)
	dnasimCh := wb.Profile.DNASimulatorBaseline("DNASimulator")
	dnasimCustom := channel.Simulator{Channel: dnasimCh, Coverage: custom}.
		Simulate("DNASimulator", refs, wb.Scale.Seed+102)
	dnasimFixed := channel.Simulator{Channel: dnasimCh, Coverage: channel.FixedCoverage(26)}.
		Simulate("DNASimulator", refs, wb.Scale.Seed+103)

	rows := []struct {
		ds       *dataset.Dataset
		coverage string
	}{
		{wb.Real, "Custom"},
		{naive, "Custom"},
		{dnasimCustom, "Custom"},
		{dnasimFixed, "26"},
	}
	algs := []recon.Reconstructor{recon.NewBMA(), recon.NewDividerBMA(), recon.NewIterative()}
	for _, row := range rows {
		cells := []string{row.ds.Name, row.coverage}
		for _, alg := range algs {
			ps, _ := reconstructAccuracy(alg, row.ds)
			cells = append(cells, pct(ps))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// Table22 reproduces Table 2.2: per-strand and per-character accuracy of
// BMA and Iterative at fixed coverages 5 and 6, real versus DNASimulator.
func Table22(wb *Workbench) (Table, error) {
	t := Table{
		ID:      "table2.2",
		Title:   "Accuracy of TR algorithms at fixed coverage",
		Headers: []string{"Data", "Coverage", "BMA per-strand (%)", "BMA per-char (%)", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	dnasimCh := wb.Profile.DNASimulatorBaseline("DNASimulator")
	refs := wb.Real.References()
	for _, n := range []int{5, 6} {
		real, err := wb.FixedCoverage(n, 10)
		if err != nil {
			return Table{}, err
		}
		sim := channel.Simulator{Channel: dnasimCh, Coverage: channel.FixedCoverage(n)}.
			Simulate("DNASimulator", refs, wb.Scale.Seed+200+uint64(n))
		for _, ds := range []*dataset.Dataset{real, sim} {
			name := ds.Name
			if ds == real {
				name = "Nanopore"
			}
			cells := []string{name, fmt.Sprintf("%d", n)}
			for _, alg := range []recon.Reconstructor{recon.NewBMA(), recon.NewIterative()} {
				ps, pc := reconstructAccuracy(alg, ds)
				cells = append(cells, pct(ps), pct(pc))
			}
			t.Rows = append(t.Rows, cells)
		}
	}
	return t, nil
}

// progressiveDatasets builds the Table 3.1/3.2 evaluation set at fixed
// coverage n: the real data plus the four calibrated simulator tiers.
func progressiveDatasets(wb *Workbench, n int) ([]*dataset.Dataset, error) {
	real, err := wb.FixedCoverage(n, 10)
	if err != nil {
		return nil, err
	}
	real.Name = "Nanopore"
	out := []*dataset.Dataset{real}
	refs := wb.Real.References()
	for i, tier := range wb.Profile.Tiers(10) {
		sim := channel.Simulator{Channel: tier, Coverage: channel.FixedCoverage(n)}.
			Simulate(tier.Name(), refs, wb.Scale.Seed+300+uint64(10*n+i))
		out = append(out, sim)
	}
	return out, nil
}

// progressiveTable renders the Table 3.1/3.2 layout at one coverage.
func progressiveTable(wb *Workbench, id string, n int) (Table, error) {
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Comparison of accuracy of TR algorithms at N = %d", n),
		Headers: []string{"Data", "BMA per-strand (%)", "BMA per-char (%)", "Iter per-strand (%)", "Iter per-char (%)"},
	}
	sets, err := progressiveDatasets(wb, n)
	if err != nil {
		return Table{}, err
	}
	for _, ds := range sets {
		cells := []string{ds.Name}
		for _, alg := range []recon.Reconstructor{recon.NewBMA(), recon.NewIterative()} {
			ps, pc := reconstructAccuracy(alg, ds)
			cells = append(cells, pct(ps), pct(pc))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t, nil
}

// Table31 reproduces Table 3.1: the progressive simulator tiers at N=5.
func Table31(wb *Workbench) (Table, error) { return progressiveTable(wb, "table3.1", 5) }

// Table32 reproduces Table 3.2: the progressive simulator tiers at N=6.
func Table32(wb *Workbench) (Table, error) { return progressiveTable(wb, "table3.2", 6) }
