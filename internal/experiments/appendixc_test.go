package experiments

import (
	"strconv"
	"testing"
)

func TestAppendixC(t *testing.T) {
	wb := testWorkbench(t)
	series, err := AppendixC(wb, 5)
	if err != nil {
		t.Fatal(err)
	}
	// One panel per dataset: real + four tiers.
	if len(series) != 5 {
		t.Fatalf("got %d panels", len(series))
	}
	names := channelTierNames(wb)
	for i, s := range series {
		if len(s.Columns) != 4 {
			t.Errorf("panel %d has %d columns", i, len(s.Columns))
		}
		if s.Title == "" || s.ID == "" {
			t.Errorf("panel %d missing metadata", i)
		}
		_ = names[i] // panels follow tier order
	}
}

func TestAppendixCSummaryConvergence(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := AppendixCSummary(wb, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 5 datasets × 2 algorithms.
	if len(tab.Rows) != 10 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	chi := func(row int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][5], 64)
		if err != nil {
			t.Fatalf("row %d χ² cell: %v", row, err)
		}
		return v
	}
	// Row layout: (real, naive, cond, skew, 2nd-order) × (Iterative, BMA).
	// The real rows are distance 0 from themselves.
	if chi(0) != 0 || chi(1) != 0 {
		t.Errorf("real-vs-real χ² = %v, %v", chi(0), chi(1))
	}
	// The final tier's residual profile should sit closer to the real
	// profile than the naive tier's, for BMA (odd rows: 3 = naive BMA,
	// 9 = second-order BMA).
	naiveBMA, finalBMA := chi(3), chi(9)
	if finalBMA >= naiveBMA {
		t.Errorf("BMA residual profile χ²: final tier %.4f not below naive %.4f", finalBMA, naiveBMA)
	}
}
