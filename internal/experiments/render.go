package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact mirroring one of the paper's
// tables: a title, column headers and string rows.
type Table struct {
	// ID is the experiment identifier ("table2.1", "fig3.3", ...).
	ID string
	// Title is the paper's caption.
	Title string
	// Headers name the columns.
	Headers []string
	// Rows hold the cells, row-major.
	Rows [][]string
}

// Render returns the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CSV returns the table as comma-separated values (cells with commas are
// quoted).
func (t Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Series is a rendered figure: one shared X column and named Y columns.
type Series struct {
	// ID is the experiment identifier.
	ID string
	// Title is the paper's caption.
	Title string
	// XLabel names the x axis; X holds its values.
	XLabel string
	X      []float64
	// Columns hold one y-vector per named curve.
	Columns []SeriesColumn
}

// SeriesColumn is one named curve of a Series.
type SeriesColumn struct {
	Label string
	Y     []float64
}

// CSV renders the series as comma-separated values with the x column
// first.
func (s Series) CSV() string {
	var sb strings.Builder
	sb.WriteString(s.XLabel)
	for _, c := range s.Columns {
		sb.WriteByte(',')
		sb.WriteString(c.Label)
	}
	sb.WriteByte('\n')
	for i, x := range s.X {
		fmt.Fprintf(&sb, "%g", x)
		for _, c := range s.Columns {
			if i < len(c.Y) {
				fmt.Fprintf(&sb, ",%g", c.Y[i])
			} else {
				sb.WriteByte(',')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Render returns the series as a compact ASCII chart: each column is
// binned and drawn as a horizontal bar profile, which is enough to read
// the paper's qualitative shapes (linear, A-shaped, V-shaped) from a
// terminal.
func (s Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", s.ID, s.Title)
	const bins = 22
	const barWidth = 48
	for _, col := range s.Columns {
		fmt.Fprintf(&sb, "%s:\n", col.Label)
		if len(col.Y) == 0 {
			continue
		}
		// Bin the series down to a fixed number of rows.
		binned := make([]float64, 0, bins)
		labels := make([]string, 0, bins)
		n := len(col.Y)
		per := (n + bins - 1) / bins
		for start := 0; start < n; start += per {
			end := start + per
			if end > n {
				end = n
			}
			sum := 0.0
			for _, v := range col.Y[start:end] {
				sum += v
			}
			binned = append(binned, sum/float64(end-start))
			if start < len(s.X) {
				labels = append(labels, fmt.Sprintf("%g", s.X[start]))
			} else {
				labels = append(labels, "")
			}
		}
		maxV := 0.0
		for _, v := range binned {
			if v > maxV {
				maxV = v
			}
		}
		for i, v := range binned {
			bar := 0
			if maxV > 0 {
				bar = int(v / maxV * barWidth)
			}
			fmt.Fprintf(&sb, "  %8s | %-*s %.4g\n", labels[i], barWidth, strings.Repeat("#", bar), v)
		}
	}
	return sb.String()
}

// Result is any rendered experiment artifact.
type Result interface {
	// Render returns the terminal representation.
	Render() string
	// CSV returns the machine-readable representation.
	CSV() string
}

// Render implements Result for Table (already defined); these assertions
// keep both types honest.
var (
	_ Result = Table{}
	_ Result = Series{}
)

func pct(v float64) string { return fmt.Sprintf("%.2f", v) }
