package experiments

import "testing"

func TestExtClustering(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := ExtClustering(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// Re-clustering should stay high-purity and lose only a few points of
	// accuracy vs perfect clustering.
	purity := cell(t, tab, 1, 1)
	if purity < 0.90 {
		t.Errorf("re-clustering purity %.3f too low", purity)
	}
	perfect := cell(t, tab, 0, 4)
	reclustered := cell(t, tab, 1, 4)
	if reclustered > perfect+1 {
		t.Errorf("re-clustered accuracy %.2f above perfect %.2f?", reclustered, perfect)
	}
	if reclustered < perfect-25 {
		t.Errorf("re-clustering lost too much accuracy: %.2f vs %.2f", reclustered, perfect)
	}
}

func TestExtErrorScale(t *testing.T) {
	tab, err := ExtErrorScale(Scale{Clusters: 250, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		// The fitted aggregate tracks the true rate (within the long-del
		// inflation margin).
		truth := cell(t, tab, i, 0)
		fitted := cell(t, tab, i, 1)
		if fitted < truth*0.9 || fitted > truth*1.25 {
			t.Errorf("row %d: fitted %.4f far from truth %.4f", i, fitted, truth)
		}
		// The calibrated simulator stays optimistic (positive gap) but
		// within a modest band at every regime.
		gap := cell(t, tab, i, 4)
		if gap < -8 || gap > 30 {
			t.Errorf("row %d: gap %.2f pp out of range", i, gap)
		}
	}
}

func TestExtHoldout(t *testing.T) {
	wb := testWorkbench(t)
	tab, err := ExtHoldout(wb)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// The held-out calibration's gap must be close to the in-sample gap:
	// matching gaps mean the fit captures channel structure, not strands.
	heldOut := cell(t, tab, 1, 4)
	inSample := cell(t, tab, 2, 4)
	if d := heldOut - inSample; d < -6 || d > 6 {
		t.Errorf("held-out gap %.2f differs from in-sample gap %.2f by %.2f pp", heldOut, inSample, d)
	}
	// Both fitted aggregates land near the wetlab rate.
	for _, row := range []int{1, 2} {
		agg := cell(t, tab, row, 1)
		if agg < 0.05 || agg > 0.08 {
			t.Errorf("row %d fitted aggregate %.4f out of range", row, agg)
		}
	}
}
