package experiments

import (
	"fmt"
	"math"
	"strings"
)

// SVG rendering of Series: stdlib-only line charts good enough to eyeball
// the paper's profile shapes (linear, A-shaped, V-shaped) and accuracy
// curves. dnabench -svg writes one file per figure.

// svgPalette cycles through distinguishable stroke colours.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	svgWidth   = 760
	svgHeight  = 420
	svgMarginL = 60
	svgMarginR = 150
	svgMarginT = 40
	svgMarginB = 45
)

// SVG renders the series as a standalone SVG document.
func (s Series) SVG() string {
	plotW := float64(svgWidth - svgMarginL - svgMarginR)
	plotH := float64(svgHeight - svgMarginT - svgMarginB)

	xMin, xMax := math.Inf(1), math.Inf(-1)
	for _, x := range s.X {
		xMin = math.Min(xMin, x)
		xMax = math.Max(xMax, x)
	}
	yMin, yMax := 0.0, math.Inf(-1)
	for _, col := range s.Columns {
		for _, y := range col.Y {
			yMax = math.Max(yMax, y)
		}
	}
	if math.IsInf(xMax, -1) || math.IsInf(yMax, -1) || xMax == xMin {
		xMin, xMax, yMax = 0, 1, 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	// Headroom above the tallest point.
	yMax *= 1.05

	px := func(x float64) float64 { return svgMarginL + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return svgMarginT + plotH - (y-yMin)/(yMax-yMin)*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgWidth, svgHeight, svgWidth, svgHeight)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s — %s</text>`+"\n",
		svgMarginL, escape(s.ID), escape(s.Title))

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		px(xMin), py(yMin), px(xMax), py(yMin))
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		px(xMin), py(yMin), px(xMin), py(yMax/1.05))
	// Ticks: 5 on each axis.
	for i := 0; i <= 5; i++ {
		xv := xMin + (xMax-xMin)*float64(i)/5
		yv := yMin + (yMax-yMin)*float64(i)/5
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px(xv), py(yMin), px(xv), py(yMin)+4)
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(xv), py(yMin)+16, trimFloat(xv))
		fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px(xMin)-4, py(yv), px(xMin), py(yv))
		fmt.Fprintf(&sb, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			px(xMin)-7, py(yv)+3, trimFloat(yv))
	}
	fmt.Fprintf(&sb, `<text x="%g" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		px((xMin+xMax)/2), svgHeight-8, escape(s.XLabel))

	// Curves + legend.
	for ci, col := range s.Columns {
		colour := svgPalette[ci%len(svgPalette)]
		var path strings.Builder
		for i, y := range col.Y {
			if i >= len(s.X) {
				break
			}
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(s.X[i]), py(y))
		}
		fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(path.String()), colour)
		ly := svgMarginT + 14 + 16*ci
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			svgWidth-svgMarginR+10, ly, svgWidth-svgMarginR+30, ly, colour)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			svgWidth-svgMarginR+35, ly+3, escape(col.Label))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3g", v)
	return s
}
