package experiments

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/metrics"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
)

// ExtStatisticalDistance evaluates the simulator tiers with the *direct*
// metrics §3.1 enumerates (and sets aside in favour of reconstruction
// accuracy): χ² distance between spatial error histograms, normalized
// edit distance and gestalt similarity between corresponding clusters,
// and χ² distance between read-length distributions. Each tier should sit
// closer to the real data than the previous one.
func ExtStatisticalDistance(wb *Workbench) (Table, error) {
	t := Table{
		ID:    "ext.metrics",
		Title: "Statistical distance of each simulator tier from real data (§3.1 metric options)",
		Headers: []string{
			"Simulator", "Spatial χ²", "Norm edit dist", "Gestalt sim", "Length χ²",
		},
	}
	refs := wb.Real.References()
	realSpatial := metrics.Normalize(wb.Profile.SpatialHistogram())
	cov := channel.CustomCoverage(wb.Real.Coverages())

	tiers := wb.Profile.Tiers(10)
	chans := make([]channel.Channel, 0, len(tiers)+1)
	chans = append(chans, wb.Profile.DNASimulatorBaseline("DNASimulator"))
	for _, tier := range tiers {
		chans = append(chans, tier)
	}
	for i, ch := range chans {
		sim := channel.Simulator{Channel: ch, Coverage: cov}
		synth := sim.Simulate(ch.Name(), refs, wb.Scale.Seed+1200+uint64(i))
		p, err := profile.Profile(synth, profile.Options{})
		if err != nil {
			return Table{}, err
		}
		spatialChi := metrics.ChiSquare(realSpatial, metrics.Normalize(p.SpatialHistogram()))
		cd, err := metrics.CompareDatasets(wb.Real, synth, 2)
		if err != nil {
			return Table{}, err
		}
		lengthChi := metrics.LengthHistogramDistance(wb.Real, synth)
		t.Rows = append(t.Rows, []string{
			ch.Name(),
			fmt.Sprintf("%.5f", spatialChi),
			fmt.Sprintf("%.4f", cd.MeanNormEdit),
			fmt.Sprintf("%.4f", cd.MeanGestalt),
			fmt.Sprintf("%.5f", lengthChi),
		})
	}
	return t, nil
}

// ExtAging measures retrieval accuracy as a function of storage time —
// the archival question that motivates the whole field (§1: "archival
// storage which deals with storage over hundreds of years"). The channel
// is the composable pipeline with a growing decay stage; reconstruction
// runs at fixed coverage.
func ExtAging(scale Scale) Table {
	t := Table{
		ID:      "ext.aging",
		Title:   "Retrieval accuracy vs storage time (pipeline channel, N=6)",
		Headers: []string{"Years", "Aggregate rate", "Iter per-strand (%)", "Iter per-char (%)", "2way per-strand (%)"},
	}
	refs := channel.RandomReferences(scale.Clusters, 110, scale.Seed+1300)
	for i, years := range []float64{0, 10, 50, 100, 200, 500} {
		pipe := channel.Pipeline{
			Label: fmt.Sprintf("aged-%gy", years),
			Stages: []channel.Stage{
				channel.NewSynthesisStage(0.01),
				channel.NewPCRStage(30, 0.0001),
				channel.NewDecayStage(years, 0.0002),
				channel.NewSequencingStage(channel.NanoporeMix(0.03), channel.PaperLongDeletion(), dist.NanoporeSkew()),
			},
		}
		sim := channel.Simulator{Channel: pipe, Coverage: channel.FixedCoverage(6)}
		ds := sim.Simulate(pipe.Name(), refs, scale.Seed+1301+uint64(i))
		ps, pc := reconstructAccuracy(recon.NewIterative(), ds)
		ps2, _ := reconstructAccuracy(recon.NewTwoWayIterative(), ds)
		agg, complete := pipe.AggregateRate()
		aggCol := fmt.Sprintf("%.4f", agg)
		if !complete {
			// A stage without a reported rate would silently deflate the
			// column; flag the partial sum instead of presenting it whole.
			aggCol = ">=" + aggCol
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", years),
			aggCol,
			pct(ps), pct(pc), pct(ps2),
		})
	}
	return t
}
