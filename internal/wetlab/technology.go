package wetlab

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dist"
)

// Technology describes one DNA sequencing technology generation, mirroring
// the comparison of the paper's Table 1.1.
type Technology struct {
	// Name is the common name ("Sanger", "Illumina", "Nanopore").
	Name string
	// Generation is the ordinal generation (1, 2, 3).
	Generation int
	// CostPerKbUSD is the [low, high] sequencing cost range in dollars per
	// kilobase.
	CostPerKbUSD [2]float64
	// ErrorRate is the [low, high] per-base error-rate range.
	ErrorRate [2]float64
	// SequencingLengthBP is the maximum strand length reliably sequenced.
	SequencingLengthBP int
	// ReadSpeedHoursPerKb is the [low, high] read latency range in hours
	// per kilobase.
	ReadSpeedHoursPerKb [2]float64
	// BurstErrors reports whether the technology is prone to burst errors
	// (5+ consecutive corrupted bases) — a Nanopore trait (§1.2).
	BurstErrors bool
}

// TypicalErrorRate returns the midpoint of the error-rate range.
func (t Technology) TypicalErrorRate() float64 {
	return (t.ErrorRate[0] + t.ErrorRate[1]) / 2
}

// Technologies returns the Table 1.1 registry, in generation order.
func Technologies() []Technology {
	return []Technology{
		{
			Name:                "Sanger",
			Generation:          1,
			CostPerKbUSD:        [2]float64{1, 2},
			ErrorRate:           [2]float64{0.00001, 0.0001},
			SequencingLengthBP:  500,
			ReadSpeedHoursPerKb: [2]float64{1e-1, 1e-1},
		},
		{
			Name:                "Illumina",
			Generation:          2,
			CostPerKbUSD:        [2]float64{1e-5, 1e-3},
			ErrorRate:           [2]float64{0.001, 0.01},
			SequencingLengthBP:  150,
			ReadSpeedHoursPerKb: [2]float64{1e-7, 1e-4},
		},
		{
			Name:                "Nanopore",
			Generation:          3,
			CostPerKbUSD:        [2]float64{1e-4, 1e-3},
			ErrorRate:           [2]float64{0.10, 0.10},
			SequencingLengthBP:  100000,
			ReadSpeedHoursPerKb: [2]float64{1e-7, 1e-6},
			BurstErrors:         true,
		},
	}
}

// TechnologyByName returns the registry entry with the given name.
func TechnologyByName(name string) (Technology, error) {
	for _, t := range Technologies() {
		if t.Name == name {
			return t, nil
		}
	}
	return Technology{}, fmt.Errorf("wetlab: unknown technology %q", name)
}

// SequencingModel builds a sequencing-stage channel representative of the
// technology at its typical error rate: Sanger and Illumina are
// substitution-dominant and spatially flat; Nanopore is indel-heavy with
// terminal skew and burst deletions.
func (t Technology) SequencingModel() *channel.Model {
	rate := t.TypicalErrorRate()
	if t.BurstErrors {
		return channel.NewSequencingStage(
			channel.NanoporeMix(rate),
			channel.PaperLongDeletion(),
			dist.NanoporeSkew(),
		).WithLabel("seq-" + t.Name)
	}
	m := channel.NewNaive("seq-"+t.Name, channel.Rates{Sub: 0.8 * rate, Ins: 0.1 * rate, Del: 0.1 * rate})
	m.SubMatrix = channel.TransitionBiasedSubMatrix(0.6)
	return m
}

// PhysicalPipeline builds the full population-aware storage channel for the
// technology: synthesis → PCR with amplification skew → aging with strand
// breakage → the technology's own sequencing stage. Table 1.1's quoted
// error rates are sequencing rates, so the wet-lab stages ride on top using
// the standard 70/20/5/5 split (sequencing keeps its quoted rate; the other
// shares are scaled relative to it). Bind the pool effects over a coverage
// model with BindCoverage before simulating.
func (t Technology) PhysicalPipeline(storageYears float64) channel.Pipeline {
	seqRate := t.TypicalErrorRate()
	total := seqRate / 0.70
	pcrRate := 0.05 * total
	decayRate := 0.05 * total
	var decayPerYear float64
	if storageYears > 0 {
		decayPerYear = decayRate / storageYears
	}
	return channel.Pipeline{
		Label: "physical-" + t.Name,
		Stages: []channel.Stage{
			channel.NewSynthesisStage(0.20 * total),
			channel.NewPCRAmplification(30, pcrRate/30, channel.DefaultPCREfficiencySD),
			channel.NewAgingStage(storageYears, decayPerYear, channel.DefaultBreakagePerYear),
			channel.AsStage(t.SequencingModel()),
		},
	}
}
