package wetlab

import (
	"math"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/profile"
	"dnastore/internal/rng"
)

func TestDefaultConfigMatchesPaperShape(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumClusters != 10000 || cfg.StrandLen != 110 {
		t.Errorf("config = %+v", cfg)
	}
	if math.Abs(cfg.MeanCoverage-26.97) > 1e-9 {
		t.Errorf("mean coverage = %v", cfg.MeanCoverage)
	}
	if math.Abs(cfg.ErrorRate-0.059) > 1e-9 {
		t.Errorf("error rate = %v", cfg.ErrorRate)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{NumClusters: 0, StrandLen: 1, Dispersion: 1},
		{NumClusters: 1, StrandLen: 0, Dispersion: 1},
		{NumClusters: 1, StrandLen: 1, Dispersion: 0},
		{NumClusters: 1, StrandLen: 1, Dispersion: 1, MeanCoverage: -1},
		{NumClusters: 1, StrandLen: 1, Dispersion: 1, ErrorRate: 1},
		{NumClusters: 1, StrandLen: 1, Dispersion: 1, ErasureP: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestGroundTruthAggregateRate(t *testing.T) {
	m := GroundTruthChannel(0.059)
	// Aggregate ≈ 0.059 plus the long-deletion extra-base mass.
	agg := m.AggregateRate()
	if agg < 0.055 || agg > 0.068 {
		t.Errorf("ground truth aggregate = %v", agg)
	}
	// Empirical check via edit distance.
	refs := channel.RandomReferences(300, 110, 3)
	r := rng.New(4)
	totalDist, totalBases := 0, 0
	for _, ref := range refs {
		read := m.Transmit(ref, r)
		totalDist += align.Distance(string(ref), string(read))
		totalBases += ref.Len()
	}
	rate := float64(totalDist) / float64(totalBases)
	// Long deletions add extra deleted bases beyond the start probability.
	if rate < 0.050 || rate > 0.075 {
		t.Errorf("empirical ground-truth error rate = %v, want ≈0.059", rate)
	}
}

func TestGroundTruthTerminalSkew(t *testing.T) {
	m := GroundTruthChannel(0.059)
	r := rng.New(5)
	ref := channel.RandomReferences(1, 110, 6)[0]
	counts := make([]int, 111)
	const n = 30000
	for i := 0; i < n; i++ {
		read := m.Transmit(ref, r)
		for _, p := range align.GestaltErrorPositions(string(ref), string(read)) {
			if p > 110 {
				p = 110 // reads longer than the reference spill into the last bin
			}
			counts[p]++
		}
	}
	// Interior baseline over the flat middle region.
	interior := 0.0
	for p := 20; p < 90; p++ {
		interior += float64(counts[p])
	}
	interior /= 70
	// Excess error mass above the interior baseline at each terminal. The
	// end boost is smeared over the last ~10 read positions because reads
	// are deletion-shortened, so compare window excesses, not single bins.
	startMass, endMass := 0.0, 0.0
	for p := 0; p < 3; p++ {
		startMass += float64(counts[p]) - interior
	}
	for p := 98; p <= 110; p++ {
		endMass += float64(counts[p]) - interior
	}
	if startMass < 2*interior {
		t.Errorf("strand start not error-skewed: excess %v vs interior %v", startMass, interior)
	}
	ratio := endMass / startMass
	if ratio < 1.2 || ratio > 3.5 {
		t.Errorf("end/start excess ratio = %v, want ≈2 (paper Fig 3.2b)", ratio)
	}
}

func TestGenerateSmallDataset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClusters = 300
	cfg.Seed = 7
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := ds.ComputeStats()
	if stats.NumClusters != 300 {
		t.Errorf("clusters = %d", stats.NumClusters)
	}
	if stats.RefLength != 110 {
		t.Errorf("ref length = %d", stats.RefLength)
	}
	if math.Abs(stats.MeanCoverage-26.97) > 2.5 {
		t.Errorf("mean coverage = %v, want ≈27", stats.MeanCoverage)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumClusters = 50
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for i := range a.Clusters {
		if len(a.Clusters[i].Reads) != len(b.Clusters[i].Reads) {
			t.Fatal("coverage differs between identical configs")
		}
		for j := range a.Clusters[i].Reads {
			if a.Clusters[i].Reads[j] != b.Clusters[i].Reads[j] {
				t.Fatal("reads differ between identical configs")
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate did not panic")
		}
	}()
	MustGenerate(Config{})
}

func TestTechnologiesTable11(t *testing.T) {
	techs := Technologies()
	if len(techs) != 3 {
		t.Fatalf("got %d technologies", len(techs))
	}
	for i, tech := range techs {
		if tech.Generation != i+1 {
			t.Errorf("generation order broken at %d", i)
		}
	}
	nano, err := TechnologyByName("Nanopore")
	if err != nil {
		t.Fatal(err)
	}
	if !nano.BurstErrors {
		t.Error("Nanopore should have burst errors")
	}
	if nano.TypicalErrorRate() != 0.10 {
		t.Errorf("Nanopore error rate = %v", nano.TypicalErrorRate())
	}
	ill, _ := TechnologyByName("Illumina")
	if ill.TypicalErrorRate() >= nano.TypicalErrorRate() {
		t.Error("Illumina should be cleaner than Nanopore")
	}
	if _, err := TechnologyByName("PacBio"); err == nil {
		t.Error("unknown technology accepted")
	}
}

func TestSequencingModels(t *testing.T) {
	r := rng.New(8)
	ref := channel.RandomReferences(1, 110, 9)[0]
	for _, tech := range Technologies() {
		m := tech.SequencingModel()
		read := m.Transmit(ref, r)
		if err := read.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
		if m.Name() == "" {
			t.Errorf("%s: empty model name", tech.Name)
		}
	}
	// Nanopore model should be far noisier than Sanger.
	sanger, _ := TechnologyByName("Sanger")
	nano, _ := TechnologyByName("Nanopore")
	sd, nd := 0, 0
	refs := channel.RandomReferences(100, 110, 10)
	sm, nm := sanger.SequencingModel(), nano.SequencingModel()
	for _, ref := range refs {
		sd += align.Distance(string(ref), string(sm.Transmit(ref, r)))
		nd += align.Distance(string(ref), string(nm.Transmit(ref, r)))
	}
	if nd < 50*sd {
		t.Errorf("Nanopore (%d) should be >>50x noisier than Sanger (%d)", nd, sd)
	}
}

func TestTechnologyPhysicalPipeline(t *testing.T) {
	ref := channel.RandomReferences(1, 110, 12)[0]
	for _, tech := range Technologies() {
		pipe := tech.PhysicalPipeline(100)
		if len(pipe.Stages) != 4 {
			t.Fatalf("%s: %d stages, want 4", tech.Name, len(pipe.Stages))
		}
		if _, ok := pipe.Stages[1].(*channel.PCRAmplification); !ok {
			t.Errorf("%s: stage 1 is %T, want *channel.PCRAmplification", tech.Name, pipe.Stages[1])
		}
		if _, ok := pipe.Stages[2].(*channel.AgingStage); !ok {
			t.Errorf("%s: stage 2 is %T, want *channel.AgingStage", tech.Name, pipe.Stages[2])
		}
		if err := pipe.Transmit(ref, rng.New(13)).Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
		// Pool stages must bind over coverage.
		base := channel.FixedCoverage(8)
		if cov := pipe.BindCoverage(base); cov.Name() == base.Name() {
			t.Errorf("%s: pool stages not bound: %q", tech.Name, cov.Name())
		}
		// The quoted Table 1.1 rate is the sequencing share; the wet-lab
		// stages ride on top, so the aggregate exceeds it by the 70/20/5/5
		// split.
		agg, complete := pipe.AggregateRate()
		if !complete {
			t.Errorf("%s: aggregate incomplete", tech.Name)
		}
		want := tech.TypicalErrorRate() / 0.70
		if math.Abs(agg-want)/want > 0.05 {
			t.Errorf("%s: aggregate %v, want about %v", tech.Name, agg, want)
		}
	}
}

func TestIlluminaGroundTruth(t *testing.T) {
	cfg := IlluminaConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.NumClusters = 200
	ds, err := GenerateIllumina(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := ds.ComputeStats()
	if math.Abs(stats.MeanCoverage-30) > 3 {
		t.Errorf("mean coverage = %v", stats.MeanCoverage)
	}
	// Empirical error rate ≈ 0.5%, an order of magnitude below Nanopore.
	r := rng.New(9)
	m := GroundTruthIlluminaChannel(0.005)
	refs := channel.RandomReferences(300, 110, 10)
	totalDist, totalBases := 0, 0
	subs, indels := 0, 0
	for _, ref := range refs {
		read := m.Transmit(ref, r)
		d := align.Distance(string(ref), string(read))
		totalDist += d
		totalBases += ref.Len()
		if read.Len() == ref.Len() && d > 0 {
			subs += d
		} else if d > 0 {
			indels += d
		}
	}
	rate := float64(totalDist) / float64(totalBases)
	if rate < 0.003 || rate > 0.008 {
		t.Errorf("Illumina empirical error rate = %v, want ≈0.005", rate)
	}
	if subs <= indels {
		t.Errorf("Illumina should be substitution-dominant: subs %d vs indels %d", subs, indels)
	}
}

func TestIlluminaCalibrationTransfers(t *testing.T) {
	// The same profiling machinery must fit the Illumina shape: the fitted
	// sub share should dominate as generated.
	cfg := IlluminaConfig()
	cfg.NumClusters = 200
	ds, err := GenerateIllumina(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.Profile(ds, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rates()
	if r.Sub < r.Del+r.Ins {
		t.Errorf("fitted Illumina profile not substitution-dominant: %+v", r)
	}
	if math.Abs(p.AggregateRate()-0.005) > 0.0015 {
		t.Errorf("fitted aggregate = %v, want ≈0.005", p.AggregateRate())
	}
}
