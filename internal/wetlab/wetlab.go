// Package wetlab provides the "real data" substrate of the reproduction.
//
// The paper evaluates its simulator against the Microsoft Nanopore dataset
// of Batu et al. [3]: 10,000 reference strands of length 110, 269,709 noisy
// reads, mean coverage 26.97, 16 erasures, aggregate error ≈5.9%, with a
// terminal spatial skew (strand end ≈2× strand start), burst deletions, a
// transition-biased substitution confusion matrix, and second-order errors
// carrying their own positional skews (Figs 3.2 and 3.6).
//
// That dataset is not redistributable, so this package implements a
// *ground-truth wetlab channel* exhibiting exactly those published shape
// parameters and a generator that emits a synthetic dataset with the same
// statistics. Calibration and evaluation code treats the generated reads as
// opaque "real" data — it must re-derive every parameter from the reads
// alone, just as the paper does from the wetlab data. See DESIGN.md §2 for
// the substitution argument.
package wetlab

import (
	"context"
	"fmt"

	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
)

// Config parameterises the synthetic Nanopore dataset.
type Config struct {
	// NumClusters is the number of reference strands (paper: 10,000).
	NumClusters int
	// StrandLen is the reference length (paper: 110).
	StrandLen int
	// MeanCoverage is the mean reads per cluster (paper: 26.97).
	MeanCoverage float64
	// Dispersion is the negative-binomial coverage dispersion; smaller is
	// more spread. The paper's coverages range 0–164 around mean 27, which
	// matches k ≈ 2.5.
	Dispersion float64
	// ErrorRate is the aggregate per-base error rate (paper: 0.059).
	ErrorRate float64
	// ErasureP is the probability a cluster is lost entirely (paper: 16 of
	// 10,000).
	ErasureP float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig returns the published shape of the Microsoft Nanopore
// dataset.
func DefaultConfig() Config {
	return Config{
		NumClusters:  10000,
		StrandLen:    110,
		MeanCoverage: 26.97,
		Dispersion:   2.5,
		ErrorRate:    0.059,
		ErasureP:     0.0016,
		Seed:         1,
	}
}

// Validate checks the configuration for usable values.
func (c Config) Validate() error {
	if c.NumClusters <= 0 {
		return fmt.Errorf("wetlab: NumClusters must be positive, got %d", c.NumClusters)
	}
	if c.StrandLen <= 0 {
		return fmt.Errorf("wetlab: StrandLen must be positive, got %d", c.StrandLen)
	}
	if c.MeanCoverage < 0 {
		return fmt.Errorf("wetlab: MeanCoverage must be non-negative, got %g", c.MeanCoverage)
	}
	if c.Dispersion <= 0 {
		return fmt.Errorf("wetlab: Dispersion must be positive, got %g", c.Dispersion)
	}
	if c.ErrorRate < 0 || c.ErrorRate >= 1 {
		return fmt.Errorf("wetlab: ErrorRate must be in [0,1), got %g", c.ErrorRate)
	}
	if c.ErasureP < 0 || c.ErasureP > 1 {
		return fmt.Errorf("wetlab: ErasureP must be in [0,1], got %g", c.ErasureP)
	}
	return nil
}

// GroundTruthChannel builds the channel that stands in for the physical
// Nanopore pipeline at the given aggregate error rate. It layers every
// effect the paper attributes to the real data:
//
//   - per-base conditional error rates (G- and C-rich positions noisier),
//   - a transition-biased substitution confusion matrix (A↔G, C↔T),
//   - burst (long) deletions with the §3.3.1 length distribution,
//   - the terminal spatial skew of Fig 3.2b (end ≈ 2× start),
//   - ten dominant second-order errors carrying ~56% of the error mass,
//     several with their own end-of-strand skew (Fig 3.6).
func GroundTruthChannel(errorRate float64) *channel.Model {
	m := &channel.Model{Label: "wetlab-nanopore"}
	// Nanopore mix, modulated per base: G and C slightly noisier (secondary
	// structure), A and T slightly cleaner. Mean multiplier is 1.
	mix := channel.NanoporeMix(errorRate)
	baseMult := [dna.NumBases]float64{dna.A: 0.90, dna.C: 1.05, dna.G: 1.15, dna.T: 0.90}
	for b := dna.Base(0); b < dna.NumBases; b++ {
		m.PerBase[b] = mix.Scale(baseMult[b])
	}
	m.SubMatrix = channel.TransitionBiasedSubMatrix(0.7)
	m.InsDist = [dna.NumBases]float64{dna.A: 0.3, dna.C: 0.2, dna.G: 0.2, dna.T: 0.3}
	ld := channel.PaperLongDeletion()
	// Scale the long-deletion start probability with the error rate so the
	// channel stays coherent away from the default 5.9%.
	ld.Prob *= errorRate / 0.059
	m.LongDel = ld

	skewed := m.WithSpatial(dist.NanoporeSkew())

	// Second-order errors: the ten most common specific errors comprise
	// ~56% of total error mass (§3.3.3). endSkew concentrates an error at
	// the final positions; startSkew at the first ones; nil is uniform.
	endSkew := []float64{1, 1, 1, 1, 1, 1, 1, 1, 2, 6}
	startSkew := []float64{5, 2, 1, 1, 1, 1, 1, 1, 1, 1}
	unit := errorRate * 0.56 / 10 // average mass per second-order error
	so := []channel.SecondOrderError{
		{Kind: align.Del, From: dna.G, Rate: 4 * 1.6 * unit, Spatial: endSkew},
		{Kind: align.Del, From: dna.T, Rate: 4 * 1.4 * unit, Spatial: endSkew},
		{Kind: align.Del, From: dna.A, Rate: 4 * 1.2 * unit},
		{Kind: align.Del, From: dna.C, Rate: 4 * 1.0 * unit},
		{Kind: align.Sub, From: dna.T, To: dna.C, Rate: 4 * 1.2 * unit, Spatial: endSkew},
		{Kind: align.Sub, From: dna.A, To: dna.G, Rate: 4 * 1.1 * unit, Spatial: startSkew},
		{Kind: align.Sub, From: dna.C, To: dna.T, Rate: 4 * 0.8 * unit},
		{Kind: align.Sub, From: dna.G, To: dna.A, Rate: 4 * 0.7 * unit},
		{Kind: align.Ins, To: dna.A, Rate: 0.55 * unit, Spatial: startSkew},
		{Kind: align.Ins, To: dna.T, Rate: 0.45 * unit, Spatial: endSkew},
	}
	out := skewed.WithSecondOrder(so)
	out.Label = "wetlab-nanopore"
	return out
}

// IlluminaConfig returns the shape of a second-generation (Illumina)
// dataset: an order of magnitude cleaner than Nanopore, substitution-
// dominant, with tighter coverage spread — the "other technology" a
// robust simulator must also fit (§4.3's multi-dataset recommendation).
func IlluminaConfig() Config {
	return Config{
		NumClusters:  10000,
		StrandLen:    110,
		MeanCoverage: 30,
		Dispersion:   8, // tighter than Nanopore's spread
		ErrorRate:    0.005,
		ErasureP:     0.0005,
		Seed:         2,
	}
}

// GroundTruthIlluminaChannel builds the channel standing in for an
// Illumina pipeline at the given aggregate rate: substitution-dominant
// (~80%), transition-biased, no burst deletions, a mild read-start
// quality ramp instead of the Nanopore terminal spike.
func GroundTruthIlluminaChannel(errorRate float64) *channel.Model {
	m := channel.NewNaive("wetlab-illumina",
		channel.Rates{Sub: 0.8 * errorRate, Ins: 0.08 * errorRate, Del: 0.12 * errorRate})
	m.SubMatrix = channel.TransitionBiasedSubMatrix(0.6)
	return m.WithSpatial(dist.TerminalSkew{
		StartPositions: 3, EndPositions: 8, StartBoost: 2, EndBoost: 3,
	}).WithLabel("wetlab-illumina")
}

// GenerateIllumina produces a synthetic Illumina-shaped dataset.
func GenerateIllumina(cfg Config) (*dataset.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	refs := channel.RandomReferences(cfg.NumClusters, cfg.StrandLen, cfg.Seed)
	sim := channel.Simulator{
		Channel: GroundTruthIlluminaChannel(cfg.ErrorRate),
		Coverage: channel.ErasureCoverage{
			Base: channel.NegBinCoverage{Mean: cfg.MeanCoverage, Dispersion: cfg.Dispersion},
			P:    cfg.ErasureP,
		},
	}
	ds := sim.Simulate("Illumina", refs, cfg.Seed+0x11)
	return ds, nil
}

// Generate produces the synthetic "real Nanopore" dataset.
func Generate(cfg Config) (*dataset.Dataset, error) {
	return GenerateCtx(context.Background(), cfg)
}

// GenerateCtx is Generate under a context: cancellation stops the
// simulation between clusters and returns the context error instead of a
// partially filled dataset.
func GenerateCtx(ctx context.Context, cfg Config) (*dataset.Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	refs := channel.RandomReferences(cfg.NumClusters, cfg.StrandLen, cfg.Seed)
	sim := channel.Simulator{
		Channel: GroundTruthChannel(cfg.ErrorRate),
		Coverage: channel.ErasureCoverage{
			Base: channel.NegBinCoverage{Mean: cfg.MeanCoverage, Dispersion: cfg.Dispersion},
			P:    cfg.ErasureP,
		},
	}
	ds, err := sim.SimulateCtx(ctx, "Nanopore", refs, cfg.Seed+0x5743)
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// MustGenerate is Generate that panics on configuration errors; for tests
// and benchmarks with static configs.
func MustGenerate(cfg Config) *dataset.Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}
