package dataset

import (
	"bytes"
	"strings"
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func sample() *Dataset {
	return &Dataset{
		Name: "test",
		Clusters: []Cluster{
			{Ref: "ACGT", Reads: []dna.Strand{"ACGT", "ACG", "AACGT"}},
			{Ref: "TTTT", Reads: []dna.Strand{"TTT"}},
			{Ref: "GGGG", Reads: nil}, // erasure
		},
	}
}

func TestBasicStats(t *testing.T) {
	d := sample()
	if d.NumClusters() != 3 {
		t.Errorf("NumClusters = %d", d.NumClusters())
	}
	if d.NumReads() != 4 {
		t.Errorf("NumReads = %d", d.NumReads())
	}
	if d.Erasures() != 1 {
		t.Errorf("Erasures = %d", d.Erasures())
	}
	if got := d.MeanCoverage(); got != 4.0/3.0 {
		t.Errorf("MeanCoverage = %v", got)
	}
	s := d.ComputeStats()
	if s.MinCoverage != 0 || s.MaxCoverage != 3 || s.RefLength != 4 {
		t.Errorf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "3 clusters") {
		t.Errorf("stats string = %q", s.String())
	}
}

func TestEmptyDataset(t *testing.T) {
	d := &Dataset{}
	if d.MeanCoverage() != 0 {
		t.Error("empty mean coverage != 0")
	}
	s := d.ComputeStats()
	if s.NumClusters != 0 || s.RefLength != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestCoverageHistogram(t *testing.T) {
	d := sample()
	h := d.CoverageHistogram()
	if h[3] != 1 || h[1] != 1 || h[0] != 1 {
		t.Errorf("histogram = %v", h)
	}
	cov := d.SortedCoverages()
	if len(cov) != 3 || cov[0] != 0 || cov[2] != 3 {
		t.Errorf("sorted coverages = %v", cov)
	}
}

func TestCoveragesAndReferences(t *testing.T) {
	d := sample()
	if got := d.Coverages(); got[0] != 3 || got[1] != 1 || got[2] != 0 {
		t.Errorf("Coverages = %v", got)
	}
	refs := d.References()
	if refs[1] != "TTTT" {
		t.Errorf("References = %v", refs)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sample()
	c := d.Clone()
	c.Clusters[0].Reads[0] = "TTTT"
	if d.Clusters[0].Reads[0] != "ACGT" {
		t.Error("Clone shares read storage")
	}
}

func TestValidate(t *testing.T) {
	d := sample()
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	d.Clusters[0].Reads[1] = "ACGN"
	if err := d.Validate(); err == nil {
		t.Error("invalid read accepted")
	}
	d = sample()
	d.Clusters[2].Ref = "XXXX"
	if err := d.Validate(); err == nil {
		t.Error("invalid ref accepted")
	}
}

func TestSubsampleFixed(t *testing.T) {
	d := &Dataset{
		Clusters: []Cluster{
			{Ref: "AAAA", Reads: []dna.Strand{"A1", "A2", "A3"}},
			{Ref: "CCCC", Reads: []dna.Strand{"C1", "C2"}},
			{Ref: "GGGG", Reads: []dna.Strand{"G1", "G2", "G3", "G4"}},
		},
	}
	// Deliberately use non-DNA read placeholders; SubsampleFixed must not
	// validate, only slice.
	out, err := d.SubsampleFixed(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumClusters() != 2 {
		t.Fatalf("kept %d clusters, want 2", out.NumClusters())
	}
	for _, c := range out.Clusters {
		if c.Coverage() != 2 {
			t.Errorf("cluster coverage = %d, want 2", c.Coverage())
		}
	}
	// Prefix property: first reads are retained in order.
	if out.Clusters[0].Reads[0] != "A1" || out.Clusters[0].Reads[1] != "A2" {
		t.Errorf("prefix not preserved: %v", out.Clusters[0].Reads)
	}
}

func TestSubsampleFixedErrors(t *testing.T) {
	d := sample()
	if _, err := d.SubsampleFixed(0, 5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := d.SubsampleFixed(6, 5); err == nil {
		t.Error("n > minCoverage accepted")
	}
}

func TestSubsamplePrefixConsistency(t *testing.T) {
	// §3.2: coverage n and n+1 subsamples share the first n reads.
	r := rng.New(3)
	d := &Dataset{}
	for i := 0; i < 20; i++ {
		var reads []dna.Strand
		for j := 0; j < 10+r.Intn(5); j++ {
			reads = append(reads, dna.Strand("ACGT"))
		}
		d.Clusters = append(d.Clusters, Cluster{Ref: "ACGT", Reads: reads})
	}
	d.ShuffleReads(r)
	s5, err := d.SubsampleFixed(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	s6, err := d.SubsampleFixed(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s5.Clusters {
		for j := 0; j < 5; j++ {
			if s5.Clusters[i].Reads[j] != s6.Clusters[i].Reads[j] {
				t.Fatal("prefix reads differ between coverages")
			}
		}
	}
}

func TestFilterMinCoverage(t *testing.T) {
	d := sample()
	out := d.FilterMinCoverage(1)
	if out.NumClusters() != 2 {
		t.Errorf("FilterMinCoverage(1) kept %d", out.NumClusters())
	}
}

func TestShuffleReadsPreservesMultiset(t *testing.T) {
	d := sample()
	before := map[dna.Strand]int{}
	for _, c := range d.Clusters {
		for _, r := range c.Reads {
			before[r]++
		}
	}
	d.ShuffleReads(rng.New(1))
	after := map[dna.Strand]int{}
	for _, c := range d.Clusters {
		for _, r := range c.Reads {
			after[r]++
		}
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed read multiset")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("shuffle changed count of %q", k)
		}
	}
}

func TestAllReads(t *testing.T) {
	d := sample()
	pool := d.AllReads(nil)
	if len(pool) != 4 {
		t.Errorf("AllReads returned %d", len(pool))
	}
	pool2 := d.AllReads(rng.New(9))
	if len(pool2) != 4 {
		t.Errorf("shuffled AllReads returned %d", len(pool2))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters() != d.NumClusters() {
		t.Fatalf("round trip clusters = %d, want %d", got.NumClusters(), d.NumClusters())
	}
	for i := range d.Clusters {
		if got.Clusters[i].Ref != d.Clusters[i].Ref {
			t.Errorf("cluster %d ref mismatch", i)
		}
		if len(got.Clusters[i].Reads) != len(d.Clusters[i].Reads) {
			t.Errorf("cluster %d read count mismatch", i)
			continue
		}
		for j := range d.Clusters[i].Reads {
			if got.Clusters[i].Reads[j] != d.Clusters[i].Reads[j] {
				t.Errorf("cluster %d read %d mismatch", i, j)
			}
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"ACGT\nnot-a-separator\nACG\n",
		"ACGT\n",
		"ACGN\n*****************************\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("malformed input accepted: %q", c)
		}
	}
}

func TestReadLastClusterWithoutTrailingBlank(t *testing.T) {
	in := "ACGT\n*****************************\nACG\nACGT"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClusters() != 1 || d.Clusters[0].Coverage() != 2 {
		t.Errorf("parsed %+v", d)
	}
}

func TestRefsRoundTrip(t *testing.T) {
	refs := []dna.Strand{"ACGT", "TTTT", "GATTACA"}
	var buf bytes.Buffer
	if err := WriteRefs(&buf, refs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRefs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("got %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %q, want %q", i, got[i], refs[i])
		}
	}
}

func TestReadRefsSkipsBlanksAndValidates(t *testing.T) {
	got, err := ReadRefs(strings.NewReader("ACGT\n\n\nTT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d refs", len(got))
	}
	if _, err := ReadRefs(strings.NewReader("ACGZ\n")); err == nil {
		t.Error("invalid ref accepted")
	}
}
