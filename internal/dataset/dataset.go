// Package dataset defines the on-disk and in-memory representation of DNA
// storage experiments: reference strands and their clusters of noisy reads,
// together with the coverage-control protocols the paper's evaluation uses
// (§2.2.2 custom coverage, §3.2 fixed-coverage prefix subsampling).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Cluster pairs one reference strand with the noisy reads attributed to it.
// An empty Reads slice is an erasure: the strand was lost entirely (failed
// PCR, coverage 0, or mis-clustering).
type Cluster struct {
	// Ref is the designed reference strand.
	Ref dna.Strand
	// Reads are the noisy copies, in sequencing order.
	Reads []dna.Strand
}

// Coverage returns the number of noisy reads in the cluster.
func (c Cluster) Coverage() int { return len(c.Reads) }

// Dataset is an ordered list of clusters. Order is meaningful: the i-th
// cluster corresponds to the i-th reference strand, which is the "perfect
// clustering" (pseudo-clustering) regime of §3.1.
type Dataset struct {
	// Name labels the dataset in tables ("Nanopore", "Naive Simulator", ...).
	Name string
	// Clusters holds one entry per reference strand.
	Clusters []Cluster
}

// NumClusters returns the number of clusters (including erasures).
func (d *Dataset) NumClusters() int { return len(d.Clusters) }

// NumReads returns the total number of noisy reads across all clusters.
func (d *Dataset) NumReads() int {
	n := 0
	for _, c := range d.Clusters {
		n += len(c.Reads)
	}
	return n
}

// MeanCoverage returns reads-per-cluster; 0 for an empty dataset.
func (d *Dataset) MeanCoverage() float64 {
	if len(d.Clusters) == 0 {
		return 0
	}
	return float64(d.NumReads()) / float64(len(d.Clusters))
}

// Erasures returns the number of clusters with zero reads.
func (d *Dataset) Erasures() int {
	n := 0
	for _, c := range d.Clusters {
		if len(c.Reads) == 0 {
			n++
		}
	}
	return n
}

// CoverageHistogram returns a map from coverage value to cluster count.
func (d *Dataset) CoverageHistogram() map[int]int {
	h := make(map[int]int)
	for _, c := range d.Clusters {
		h[c.Coverage()]++
	}
	return h
}

// Coverages returns the per-cluster coverage vector, in cluster order. This
// is the "custom coverage" input of Table 2.1: simulating a dataset whose
// i-th cluster has exactly as many reads as the real data's i-th cluster.
func (d *Dataset) Coverages() []int {
	out := make([]int, len(d.Clusters))
	for i, c := range d.Clusters {
		out[i] = c.Coverage()
	}
	return out
}

// References returns the reference strands in cluster order.
func (d *Dataset) References() []dna.Strand {
	out := make([]dna.Strand, len(d.Clusters))
	for i, c := range d.Clusters {
		out[i] = c.Ref
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Clusters: make([]Cluster, len(d.Clusters))}
	for i, c := range d.Clusters {
		reads := make([]dna.Strand, len(c.Reads))
		copy(reads, c.Reads)
		out.Clusters[i] = Cluster{Ref: c.Ref, Reads: reads}
	}
	return out
}

// Validate checks every strand in the dataset for alphabet violations.
func (d *Dataset) Validate() error {
	for i, c := range d.Clusters {
		if err := c.Ref.Validate(); err != nil {
			return fmt.Errorf("cluster %d reference: %w", i, err)
		}
		for j, r := range c.Reads {
			if err := r.Validate(); err != nil {
				return fmt.Errorf("cluster %d read %d: %w", i, j, err)
			}
		}
	}
	return nil
}

// ShuffleReads permutes the reads inside every cluster, using the §3.2
// protocol's first step ("all clusters were shuffled") so that prefix
// subsampling draws an unbiased sample.
func (d *Dataset) ShuffleReads(r *rng.RNG) {
	for i := range d.Clusters {
		reads := d.Clusters[i].Reads
		r.Shuffle(len(reads), func(a, b int) {
			reads[a], reads[b] = reads[b], reads[a]
		})
	}
}

// SubsampleFixed implements the fixed-coverage protocol of §3.2: clusters
// with coverage below minCoverage are discarded; each remaining cluster
// keeps exactly its first n reads. Because higher coverages differ from
// lower ones only in the extra copies chosen, accuracies across n values
// share the same underlying error profile. Callers wanting the paper's
// exact protocol should ShuffleReads first and reuse the same shuffled
// dataset for every n.
func (d *Dataset) SubsampleFixed(n, minCoverage int) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: subsample coverage must be positive, got %d", n)
	}
	if n > minCoverage {
		return nil, fmt.Errorf("dataset: subsample coverage %d exceeds minimum cluster coverage %d", n, minCoverage)
	}
	out := &Dataset{Name: d.Name}
	for _, c := range d.Clusters {
		if c.Coverage() < minCoverage {
			continue
		}
		reads := make([]dna.Strand, n)
		copy(reads, c.Reads[:n])
		out.Clusters = append(out.Clusters, Cluster{Ref: c.Ref, Reads: reads})
	}
	return out, nil
}

// FilterMinCoverage returns a dataset containing only clusters with at
// least n reads.
func (d *Dataset) FilterMinCoverage(n int) *Dataset {
	out := &Dataset{Name: d.Name}
	for _, c := range d.Clusters {
		if c.Coverage() >= n {
			out.Clusters = append(out.Clusters, c)
		}
	}
	return out
}

// AllReads returns every read in the dataset as a flat shuffled pool, the
// "imperfect clustering" input of §3.1 handed to a clustering algorithm.
func (d *Dataset) AllReads(r *rng.RNG) []dna.Strand {
	var pool []dna.Strand
	for _, c := range d.Clusters {
		pool = append(pool, c.Reads...)
	}
	if r != nil {
		r.Shuffle(len(pool), func(a, b int) {
			pool[a], pool[b] = pool[b], pool[a]
		})
	}
	return pool
}

// Stats summarises a dataset for reports and CLIs.
type Stats struct {
	Name         string
	NumClusters  int
	NumReads     int
	MeanCoverage float64
	MinCoverage  int
	MaxCoverage  int
	Erasures     int
	RefLength    int // length of the first reference (0 if empty)
}

// ComputeStats returns summary statistics for the dataset.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{
		Name:         d.Name,
		NumClusters:  d.NumClusters(),
		NumReads:     d.NumReads(),
		MeanCoverage: d.MeanCoverage(),
		Erasures:     d.Erasures(),
	}
	if len(d.Clusters) > 0 {
		s.RefLength = d.Clusters[0].Ref.Len()
		s.MinCoverage = d.Clusters[0].Coverage()
		for _, c := range d.Clusters {
			cov := c.Coverage()
			if cov < s.MinCoverage {
				s.MinCoverage = cov
			}
			if cov > s.MaxCoverage {
				s.MaxCoverage = cov
			}
		}
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d clusters, %d reads, coverage mean %.2f [%d,%d], %d erasures, ref len %d",
		s.Name, s.NumClusters, s.NumReads, s.MeanCoverage, s.MinCoverage, s.MaxCoverage, s.Erasures, s.RefLength)
}

// clusterSeparator delimits clusters in the text format, mirroring the
// "evyat" layout used by the trace-reconstruction literature: the reference
// strand, a separator line of asterisks, the noisy copies, then a blank line.
const clusterSeparator = "*****************************"

// Write serialises the dataset in the cluster text format.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range d.Clusters {
		if _, err := fmt.Fprintf(bw, "%s\n%s\n", c.Ref, clusterSeparator); err != nil {
			return err
		}
		for _, r := range c.Reads {
			if _, err := fmt.Fprintln(bw, r); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a dataset from the cluster text format produced by Write.
func Read(rd io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	d := &Dataset{}
	var cur *Cluster
	expectSep := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case expectSep:
			if text != clusterSeparator {
				return nil, fmt.Errorf("dataset: line %d: expected separator after reference", line)
			}
			expectSep = false
		case text == "":
			if cur != nil {
				d.Clusters = append(d.Clusters, *cur)
				cur = nil
			}
		case cur == nil:
			s := dna.Strand(text)
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", line, err)
			}
			cur = &Cluster{Ref: s}
			expectSep = true
		default:
			s := dna.Strand(text)
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", line, err)
			}
			cur.Reads = append(cur.Reads, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if expectSep {
		return nil, fmt.Errorf("dataset: truncated input: reference without separator")
	}
	if cur != nil {
		d.Clusters = append(d.Clusters, *cur)
	}
	return d, nil
}

// WriteRefs writes one reference strand per line.
func WriteRefs(w io.Writer, refs []dna.Strand) error {
	bw := bufio.NewWriter(w)
	for _, s := range refs {
		if _, err := fmt.Fprintln(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRefs parses one reference strand per line, skipping blank lines.
func ReadRefs(rd io.Reader) ([]dna.Strand, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var refs []dna.Strand
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		s := dna.Strand(text)
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		refs = append(refs, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return refs, nil
}

// SortedCoverages returns the distinct coverage values present, ascending.
func (d *Dataset) SortedCoverages() []int {
	h := d.CoverageHistogram()
	out := make([]int, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
