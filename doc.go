// Package dnastore is a Go reproduction of "Simulating Noisy Channels in
// DNA Storage" (Keoliya, 2022): a data-driven simulator for the noisy DNA
// storage channel, the trace-reconstruction algorithms used to evaluate
// it, and a benchmark harness that regenerates every table and figure of
// the paper's evaluation.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// the executables under cmd/ and the runnable walkthroughs under examples/
// are the intended entry points. The benchmarks in bench_test.go pair with
// cmd/dnabench: one benchmark per paper artifact.
package dnastore
