// Command dnacluster groups an unordered pool of noisy reads by sequence
// similarity — the clustering step of the read pipeline (§1.1.2). Input is
// either a flat list of reads (one per line) or a clustered dataset whose
// grouping is discarded and re-derived; with references available the tool
// also reports clustering purity and the reconstruction-ready dataset.
//
// Usage:
//
//	dnacluster -in reads.txt -o clusters.txt
//	dnacluster -in dataset.txt -dataset -o reclustered.txt   # evaluates purity
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"dnastore/internal/cluster"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/obs"
	"dnastore/internal/rng"
)

func main() {
	var (
		in        = flag.String("in", "", "input file (required)")
		out       = flag.String("o", "-", "output file (- for stdout)")
		isDataset = flag.Bool("dataset", false, "input is a clustered dataset: shuffle, re-cluster, report purity")
		k         = flag.Int("k", 0, "minimizer k-mer length (0 = default)")
		sigs      = flag.Int("signatures", 0, "minimizers per read (0 = default)")
		threshold = flag.Int("threshold", 0, "edit-distance join threshold (0 = len/4)")
		maxDist   = flag.Int("max-ref-dist", 40, "max edit distance when assigning clusters to references")
		seed      = flag.Uint64("seed", 1, "shuffle seed")
		logOpts   = obs.LogFlags(flag.CommandLine)
	)
	flag.Parse()
	logger := logOpts.Logger("dnacluster")
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dnacluster: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := cluster.Config{K: *k, Signatures: *sigs, Threshold: *threshold}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()

	w := os.Stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer of.Close()
		w = of
	}

	if *isDataset {
		ds, err := dataset.Read(f)
		if err != nil {
			fail(err)
		}
		pool, labels := cluster.LabeledPool(ds)
		r := rng.New(*seed)
		r.Shuffle(len(pool), func(i, j int) {
			pool[i], pool[j] = pool[j], pool[i]
			labels[i], labels[j] = labels[j], labels[i]
		})
		start := time.Now()
		idx := cluster.GreedyIndices(pool, cfg)
		logger.Debug("clustered", "reads", len(pool), "clusters", len(idx),
			"elapsed", time.Since(start).Round(time.Millisecond))
		purity, err := cluster.Purity(idx, labels)
		if err != nil {
			fail(err)
		}
		groups := make([][]dna.Strand, len(idx))
		for i, members := range idx {
			for _, m := range members {
				groups[i] = append(groups[i], pool[m])
			}
		}
		re := cluster.AssignToReferences(groups, ds.References(), *maxDist)
		fmt.Fprintf(os.Stderr, "clusters %d (from %d reads), purity %.4f, assigned %d reads\n",
			len(idx), len(pool), purity, re.NumReads())
		if err := re.Write(w); err != nil {
			fail(err)
		}
		return
	}

	var pool []dna.Strand
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		s := dna.Strand(line)
		if err := s.Validate(); err != nil {
			fail(err)
		}
		pool = append(pool, s)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	start := time.Now()
	groups := cluster.Greedy(pool, cfg)
	logger.Debug("clustered", "reads", len(pool), "clusters", len(groups),
		"elapsed", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "clustered %d reads into %d clusters\n", len(pool), len(groups))
	bw := bufio.NewWriter(w)
	for i, members := range groups {
		fmt.Fprintf(bw, "# cluster %d (%d reads)\n", i, len(members))
		for _, m := range members {
			fmt.Fprintln(bw, m)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dnacluster:", err)
	os.Exit(1)
}
