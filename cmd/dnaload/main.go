// Command dnaload is the open-loop capacity and conservation harness for
// dnasimd. It fires job arrivals at a configured rate — independent of
// completions, the way real traffic arrives — through the resilient
// client (internal/client) and, with -chaos, through the chaosnet fault
// proxy, then closes the books:
//
//   - every arrival must reach exactly one terminal outcome;
//   - the server's submitted counter must equal the number of distinct
//     job IDs the clients hold (no duplicated work from retried
//     submits, no lost work from dropped ones);
//   - the server's finished counters must sum to its submitted counter;
//   - re-polled results must be byte-identical to the first fetch.
//
// The traffic mix is deterministic in -seed: small and huge specs,
// deliberate duplicate submissions of earlier specs, and mid-flight
// cancels. Measurements land in BENCH_serve.json (-out) and gate against
// a committed baseline (-compare); `make loadcheck` wires both.
//
// Usage:
//
//	dnaload -rps 60 -jobs 90 -chaos           # self-contained drill
//	dnaload -out BENCH_serve.json -compare BENCH_serve.json
//	                                          # emit + regression gate
//	dnaload -target http://host:8080 -rps 200 # drive an external server
//	dnaload -fleet-nodes 3 -rps 40 -jobs 60   # drive an in-process 3-node fleet
//
// With -fleet-nodes the harness stands up N in-process worker servers plus
// a crash-consistent fleet coordinator (ledger + spill on a temp dir) and
// drives the coordinator instead — same arrivals, same conservation gate,
// recorded as a separate "fleet" entry in the report so single-node and
// fleet capacity regress independently.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"dnastore/internal/chaosnet"
	"dnastore/internal/client"
	"dnastore/internal/fleet"
	"dnastore/internal/server"
)

func main() {
	var (
		rps        = flag.Float64("rps", 60, "open-loop arrival rate (jobs/second)")
		jobs       = flag.Int("jobs", 90, "total arrivals to fire")
		seed       = flag.Uint64("seed", 1, "seed for the traffic mix and chaos schedule")
		target     = flag.String("target", "", "drive an external dnasimd base URL instead of an in-process server")
		fleetNodes = flag.Int("fleet-nodes", 0, "drive an in-process fleet coordinator over this many worker nodes instead of a single server (0 disables)")
		chaos      = flag.Bool("chaos", false, "route traffic through the chaosnet fault proxy")
		bhPeriod   = flag.Duration("blackhole-period", 2*time.Second, "with -chaos: blackhole window period")
		bhFor      = flag.Duration("blackhole-for", 400*time.Millisecond, "with -chaos: blackhole window length")
		hugeFrac   = flag.Float64("huge-frac", 0.10, "fraction of arrivals carrying huge specs")
		dupFrac    = flag.Float64("dup-frac", 0.15, "fraction of arrivals duplicating an earlier spec")
		cancelFrac = flag.Float64("cancel-frac", 0.10, "fraction of arrivals canceled mid-flight")
		workers    = flag.Int("workers", 4, "in-process server worker count")
		queueCap   = flag.Int("queue", 256, "in-process server queue capacity")
		callTO     = flag.Duration("call-timeout", 500*time.Millisecond, "client per-call timeout")
		runTO      = flag.Duration("run-timeout", 60*time.Second, "per-job end-to-end budget")
		out        = flag.String("out", "", "write the BENCH_serve.json report to this path")
		compare    = flag.String("compare", "", "gate against this baseline report; exit 1 on regression")
		p95Factor  = flag.Float64("p95-factor", 2.5, "with -compare: allowed p95 latency growth factor")
		tputFrac   = flag.Float64("throughput-frac", 0.4, "with -compare: required fraction of baseline clusters/s")
		shedSlack  = flag.Float64("shed-slack", 0.25, "with -compare: allowed absolute shed-rate increase")
		verbose    = flag.Bool("v", false, "per-run outcome lines")
	)
	flag.Parse()

	// Each measurement lands as a named entry in the report file: "single"
	// for the one-server drive, "fleet" for the coordinator drive. The
	// regression gate compares like against like.
	entryName := "single"
	if *fleetNodes > 0 {
		entryName = "fleet"
	}

	// Read the baseline before anything can overwrite it: -out and
	// -compare may (deliberately) name the same committed file, so one
	// invocation both refreshes the measurement and gates against the
	// previous one.
	var baseline *loadReport
	if *compare != "" {
		b, err := loadLoadBaseline(*compare, entryName)
		if err != nil {
			fail(err)
		}
		baseline = b
	}

	cfg := loadConfig{
		RPS: *rps, Jobs: *jobs, Seed: *seed, Chaos: *chaos,
		HugeFrac: *hugeFrac, DupFrac: *dupFrac, CancelFrac: *cancelFrac,
		Workers: *workers, Queue: *queueCap, FleetNodes: *fleetNodes,
	}

	// Wire the target: an in-process server by default (its registry is
	// the conservation ground truth), an in-process fleet coordinator with
	// -fleet-nodes, or an external base URL whose /metrics endpoint is
	// scraped over HTTP.
	baseURL := *target
	var metrics metricsSource
	switch {
	case *target != "":
		metrics = scrapeMetrics(*target + "/metrics")
	case *fleetNodes > 0:
		if *chaos {
			fail(fmt.Errorf("-chaos is not supported with -fleet-nodes; chaosnet drills the single-node transport"))
		}
		var nodeCfgs []fleet.NodeConfig
		for i := 0; i < *fleetNodes; i++ {
			wsrv := server.New(server.Config{
				QueueCapacity: *queueCap,
				Workers:       *workers,
				Logf:          func(string, ...any) {},
			})
			wln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fail(err)
			}
			whs := &http.Server{Handler: wsrv}
			go whs.Serve(wln)
			defer whs.Close()
			nodeCfgs = append(nodeCfgs, fleet.NodeConfig{
				Name: fmt.Sprintf("w%d", i+1), BaseURL: "http://" + wln.Addr().String(),
			})
		}
		fleetDir, err := os.MkdirTemp("", "dnaload-fleet")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(fleetDir)
		coord, err := fleet.New(fleet.Config{
			Nodes: nodeCfgs,
			// Coarse shards under load: the ledger fsyncs per job, not per
			// shard, but placement and polling are per shard — 1000-cluster
			// shards keep a huge spec to a handful of worker round-trips.
			ShardClusters: 1000,
			DataDir:       fleetDir,
			Client:        client.Config{PollInterval: 10 * time.Millisecond, Seed: *seed},
		})
		if err != nil {
			fail(err)
		}
		defer coord.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		hs := &http.Server{Handler: coord}
		go hs.Serve(ln)
		defer hs.Close()
		baseURL = "http://" + ln.Addr().String()
		metrics = func() (map[string]float64, error) { return coord.Registry().Snapshot(), nil }
	default:
		srv := server.New(server.Config{
			QueueCapacity: *queueCap,
			Workers:       *workers,
			Logf:          func(string, ...any) {},
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		baseURL = "http://" + ln.Addr().String()
		metrics = func() (map[string]float64, error) { return srv.Registry().Snapshot(), nil }
	}

	var proxy *chaosnet.Proxy
	if *chaos {
		sc := chaosnet.Default()
		sc.BlackholePeriod = *bhPeriod
		sc.BlackholeFor = *bhFor
		p, err := chaosnet.Listen(hostPort(baseURL), sc, *seed)
		if err != nil {
			fail(err)
		}
		defer p.Close()
		proxy = p
		baseURL = p.URL()
	}

	c := client.New(client.Config{
		BaseURL:        baseURL,
		HTTPClient:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		MaxAttempts:    40,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     150 * time.Millisecond,
		PerCallTimeout: *callTO,
		PollInterval:   20 * time.Millisecond,
		Seed:           *seed,
	})

	rep, err := drive(c, metrics, proxy, cfg, *runTO, *verbose)
	if err != nil {
		fail(err)
	}
	rep.Name = entryName
	fmt.Print(rep.Render())

	if *out != "" {
		if err := rep.write(*out); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "dnaload: wrote report -> %s\n", *out)
	}
	if rep.Lost > 0 || rep.Duplicated > 0 || rep.Corrupted > 0 {
		fail(fmt.Errorf("conservation violated: lost=%d duplicated=%d corrupted=%d",
			rep.Lost, rep.Duplicated, rep.Corrupted))
	}
	if baseline != nil {
		if err := compareLoad(baseline, rep, *p95Factor, *tputFrac, *shedSlack); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, "dnaload: regression gate passed")
	}
}

// arrival is one planned job: its flavor and which spec it carries.
// Duplicates reuse an earlier arrival's specIdx, so both runs carry a
// byte-identical spec and must land on the same server-side job.
type arrival struct {
	flavor  string // "plain" | "dup" | "cancel"
	specIdx int
}

// splitmix64 derives independent per-arrival seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// planArrival decides arrival i's flavor deterministically from the seed.
func planArrival(i int, cfg loadConfig) arrival {
	r := rand.New(rand.NewSource(int64(splitmix64(cfg.Seed ^ uint64(i)<<17))))
	a := arrival{flavor: "plain", specIdx: i}
	switch f := r.Float64(); {
	case i > 0 && f < cfg.DupFrac:
		a.flavor = "dup"
		a.specIdx = r.Intn(i)
	case f < cfg.DupFrac+cfg.CancelFrac:
		a.flavor = "cancel"
	}
	return a
}

// specFor builds the (pure function of seed and index) spec an arrival
// carries: mostly small four-cluster drills, a fraction of huge specs
// that hold workers for much longer.
func specFor(idx int, cfg loadConfig, forceHuge bool) server.JobSpec {
	r := rand.New(rand.NewSource(int64(splitmix64(cfg.Seed*31 + uint64(idx)))))
	sim := &server.SimulateSpec{
		NumRefs: 4, RefLen: 30, Coverage: 2,
		Seed: cfg.Seed*1_000_000 + uint64(idx),
		Sub:  0.01, Ins: 0.005, Del: 0.02,
	}
	// Huge = tens of milliseconds of simulation (the hot path clears
	// ~140k clusters/s), long enough to hold a worker, overlap other
	// arrivals, and give mid-flight cancels a real race to win.
	if forceHuge || r.Float64() < cfg.HugeFrac {
		sim.NumRefs, sim.RefLen, sim.Coverage = 8000, 120, 5
	}
	return server.JobSpec{Kind: server.KindSimulate, Simulate: sim}
}

// specForArrival is the spec arrival j carries. Cancel-flavored arrivals
// always get huge specs: a cancel aimed at a sub-millisecond job loses
// the race every time and exercises nothing. Duplicate arrivals recompute
// their original's plan — recursively, since the original may itself be a
// duplicate — so every link of a dup chain derives a byte-identical spec.
func specForArrival(j int, cfg loadConfig) server.JobSpec {
	a := planArrival(j, cfg)
	if a.flavor == "dup" {
		return specForArrival(a.specIdx, cfg) // specIdx < j: terminates
	}
	return specFor(j, cfg, a.flavor == "cancel")
}

// runRecord is one arrival's ledger entry.
type runRecord struct {
	arrival  arrival
	res      client.RunResult
	latency  time.Duration
	clusters int
}

// drive fires the open-loop schedule and reconciles the books.
func drive(c *client.Client, metrics metricsSource, proxy *chaosnet.Proxy, cfg loadConfig, runTO time.Duration, verbose bool) (*loadReport, error) {
	before, err := metrics()
	if err != nil {
		return nil, fmt.Errorf("pre-drive metrics scrape: %w", err)
	}

	interval := time.Duration(float64(time.Second) / cfg.RPS)
	records := make([]runRecord, cfg.Jobs)
	var wg sync.WaitGroup
	start := time.Now()

	for i := 0; i < cfg.Jobs; i++ {
		// Open loop: the next arrival fires on schedule whether or not
		// earlier jobs finished — backpressure shows up as shed rate and
		// latency, never as a slower offered load.
		if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			records[i] = fireArrival(c, i, cfg, runTO, verbose)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := settle(metrics, 15*time.Second)
	if err != nil {
		return nil, err
	}
	rep := reconcile(records, before, after, cfg, elapsed)
	if proxy != nil {
		rep.ChaosStats = proxy.Stats().String()
	}
	return rep, nil
}

// fireArrival runs one arrival to its terminal outcome.
func fireArrival(c *client.Client, i int, cfg loadConfig, runTO time.Duration, verbose bool) runRecord {
	a := planArrival(i, cfg)
	spec := specForArrival(i, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), runTO)
	defer cancel()
	r := rand.New(rand.NewSource(int64(splitmix64(cfg.Seed ^ uint64(i)*0x9e37))))

	if a.flavor == "cancel" {
		// Submit first to learn the job ID, schedule the mid-flight
		// cancel, then Run: its idempotent resubmit replays the same job
		// and polls it to whichever terminal state wins the race.
		if st, _, err := c.Submit(ctx, spec); err == nil {
			// Mostly-immediate cancels: a canceled-while-queued job is a
			// deterministic win, a canceled-while-running one a real race,
			// and a cancel that loses to completion a benign no-op — the
			// mix exercises all three.
			delay := time.Duration(r.Intn(10)) * time.Millisecond
			go func() {
				time.Sleep(delay)
				cctx, ccancel := context.WithTimeout(context.Background(), runTO)
				defer ccancel()
				c.Cancel(cctx, st.ID) //nolint:errcheck — canceling a finished job is a benign race
			}()
		}
	}

	t0 := time.Now()
	res := c.Run(ctx, spec)
	rec := runRecord{arrival: a, res: res, latency: time.Since(t0), clusters: spec.Simulate.NumRefs}

	// Re-poll a fraction of successful results: the second fetch must be
	// byte-identical to the first, or something corrupted a payload
	// without either fetch noticing.
	if res.Outcome == client.OutcomeSucceeded && r.Float64() < 0.25 {
		if data, err := c.Result(ctx, res.JobID); err == nil && !bytes.Equal(data, res.Data) {
			rec.res.Outcome = "corrupted"
		}
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "dnaload: run %3d %-6s spec=%d outcome=%s submits=%d replays=%d in %v\n",
			i, a.flavor, a.specIdx, rec.res.Outcome, res.Submits, res.Replays, rec.latency.Round(time.Millisecond))
	}
	return rec
}

// settle polls the metrics source until the server's ledger closes: no
// queued or running jobs, and every admitted job counted terminal.
func settle(metrics metricsSource, timeout time.Duration) (map[string]float64, error) {
	var snap map[string]float64
	deadline := time.Now().Add(timeout)
	for {
		var err error
		snap, err = metrics()
		if err == nil &&
			snap["dnasimd_queue_depth"] == 0 &&
			snap["dnasimd_jobs_running"] == 0 &&
			finishedSum(snap) == snap["dnasimd_jobs_submitted_total"] {
			return snap, nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return nil, fmt.Errorf("metrics scrape: %w", err)
			}
			return snap, fmt.Errorf("server never settled: queue=%.0f running=%.0f finished=%.0f submitted=%.0f",
				snap["dnasimd_queue_depth"], snap["dnasimd_jobs_running"],
				finishedSum(snap), snap["dnasimd_jobs_submitted_total"])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func hostPort(baseURL string) string {
	const scheme = "http://"
	if len(baseURL) > len(scheme) && baseURL[:len(scheme)] == scheme {
		return baseURL[len(scheme):]
	}
	return baseURL
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dnaload:", err)
	os.Exit(1)
}

// percentile returns the p-th percentile (0..100) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// sortedLatencies collects terminal-run latencies in ascending order.
func sortedLatencies(records []runRecord) []time.Duration {
	lats := make([]time.Duration, 0, len(records))
	for _, r := range records {
		lats = append(lats, r.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats
}
