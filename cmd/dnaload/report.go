package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dnastore/internal/client"
)

// The BENCH_serve.json schema and the regression gate. Field names are
// stable: CI archives the report per commit and `make loadcheck` diffs a
// fresh measurement against the committed baseline, the same contract
// BENCH_sim.json has for the simulate hot path.
//
// The file holds named entries ("dnaload/v2") so single-server and fleet
// measurements live side by side and regress independently; a legacy
// "dnaload/v1" single-object file loads as one entry named "single".

// loadConfig pins the workload shape a report was measured under.
type loadConfig struct {
	RPS        float64 `json:"rps"`
	Jobs       int     `json:"jobs"`
	Seed       uint64  `json:"seed"`
	Chaos      bool    `json:"chaos"`
	HugeFrac   float64 `json:"huge_frac"`
	DupFrac    float64 `json:"dup_frac"`
	CancelFrac float64 `json:"cancel_frac"`
	Workers    int     `json:"workers"`
	Queue      int     `json:"queue"`
	FleetNodes int     `json:"fleet_nodes,omitempty"`
}

// latencyMS is the client-observed submit→terminal latency distribution.
type latencyMS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// loadReport is one dnaload measurement: the client-side outcome ledger,
// the server-side counter reconciliation, and the capacity numbers.
type loadReport struct {
	Schema string     `json:"schema,omitempty"` // set on legacy v1 single-object files only
	Name   string     `json:"name"`
	Config loadConfig `json:"config"`

	// Client-side terminal outcomes; Runs is their sum.
	Runs        int `json:"runs"`
	Succeeded   int `json:"succeeded"`
	Canceled    int `json:"canceled"`
	ShedGaveUp  int `json:"shed_gave_up"`
	ServerError int `json:"server_error"`
	Deadline    int `json:"deadline"`

	// Conservation: Lost counts work that vanished (a run without a
	// terminal outcome, or a client-held job ID the server never
	// counted); Duplicated counts jobs the server admitted beyond the
	// distinct IDs clients hold; Corrupted counts re-polled results that
	// differed from the first fetch. All must be zero.
	Lost       int `json:"lost"`
	Duplicated int `json:"duplicated"`
	Corrupted  int `json:"corrupted"`

	// Server-side counters over the drive window.
	DistinctJobs int `json:"distinct_jobs"`
	Submitted    int `json:"submitted"`
	Replays      int `json:"replays"`
	Shed         int `json:"shed"`

	LatencyMS      latencyMS `json:"latency_ms"`
	ShedRate       float64   `json:"shed_rate"`
	ClustersPerSec float64   `json:"clusters_per_sec"`
	ElapsedSec     float64   `json:"elapsed_sec"`

	ChaosStats string `json:"chaos_stats,omitempty"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// metricsSource snapshots the target server's counters — straight from
// the in-process registry, or scraped over HTTP for -target. The ground
// truth never crosses the chaos proxy.
type metricsSource func() (map[string]float64, error)

// scrapeMetrics parses the Prometheus text exposition at url into a
// series→value map (histogram and comment lines ride along harmlessly).
func scrapeMetrics(url string) metricsSource {
	return func() (map[string]float64, error) {
		resp, err := http.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		out := make(map[string]float64)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp <= 0 {
				continue
			}
			v, err := strconv.ParseFloat(line[sp+1:], 64)
			if err != nil {
				continue
			}
			out[line[:sp]] = v
		}
		return out, sc.Err()
	}
}

// finishedSum totals the server's terminal-outcome counters.
func finishedSum(snap map[string]float64) float64 {
	return snap[`dnasimd_jobs_finished_total{outcome="done"}`] +
		snap[`dnasimd_jobs_finished_total{outcome="failed"}`] +
		snap[`dnasimd_jobs_finished_total{outcome="canceled"}`] +
		snap[`dnasimd_jobs_finished_total{outcome="checkpointed"}`]
}

// reconcile closes the books between the client-side run ledger and the
// server's counter deltas over the drive window. The cross-check assumes
// dnaload was the target's only traffic source.
func reconcile(records []runRecord, before, after map[string]float64, cfg loadConfig, elapsed time.Duration) *loadReport {
	diff := func(name string) int { return int(after[name] - before[name]) }

	rep := &loadReport{
		Config:     cfg,
		Runs:       len(records),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ElapsedSec: elapsed.Seconds(),
	}

	// Client ledger: every run must hold exactly one terminal outcome.
	// Duplicate-flavored arrivals legitimately share a job ID with their
	// original; the distinct-ID count is what reconciles against the
	// server.
	ids := make(map[string]bool) // id → some run succeeded
	for _, r := range records {
		switch r.res.Outcome {
		case client.OutcomeSucceeded:
			rep.Succeeded++
		case client.OutcomeCanceled:
			rep.Canceled++
		case client.OutcomeShedGaveUp:
			rep.ShedGaveUp++
		case client.OutcomeServerError:
			rep.ServerError++
		case client.OutcomeDeadline:
			rep.Deadline++
		case "corrupted":
			rep.Corrupted++
		default:
			rep.Lost++ // no terminal outcome: the run hung or vanished
		}
		if r.res.JobID != "" {
			ids[r.res.JobID] = ids[r.res.JobID] || r.res.Outcome == client.OutcomeSucceeded
		}
	}
	rep.DistinctJobs = len(ids)
	rep.Submitted = diff("dnasimd_jobs_submitted_total")
	rep.Replays = diff("dnasimd_jobs_idempotent_replays_total")
	rep.Shed = diff(`dnasimd_jobs_shed_total{reason="queue_full"}`) +
		diff(`dnasimd_jobs_shed_total{reason="draining"}`) +
		diff(`dnasimd_jobs_shed_total{reason="recovering"}`) +
		diff(`dnasimd_jobs_shed_total{reason="ledger_error"}`) +
		diff(`dnasimd_jobs_shed_total{reason="deadline_expired"}`)

	if rep.Submitted > rep.DistinctJobs {
		rep.Duplicated += rep.Submitted - rep.DistinctJobs
	}
	if rep.DistinctJobs > rep.Submitted {
		rep.Lost += rep.DistinctJobs - rep.Submitted
	}

	if accepted := rep.Shed + rep.Submitted + rep.Replays; accepted > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(accepted)
	}

	// Capacity: clusters the server completed per wall-clock second of
	// the drive window, counting each distinct job once however many
	// duplicate submissions rode on it.
	counted := make(map[string]bool)
	clusters := 0
	for _, r := range records {
		if r.res.Outcome == client.OutcomeSucceeded && !counted[r.res.JobID] {
			counted[r.res.JobID] = true
			clusters += r.clusters
		}
	}
	if elapsed > 0 {
		rep.ClustersPerSec = float64(clusters) / elapsed.Seconds()
	}

	lats := sortedLatencies(records)
	rep.LatencyMS = latencyMS{
		P50: float64(percentile(lats, 50)) / float64(time.Millisecond),
		P95: float64(percentile(lats, 95)) / float64(time.Millisecond),
		P99: float64(percentile(lats, 99)) / float64(time.Millisecond),
	}
	return rep
}

// Render formats the report as an aligned human-readable summary.
func (r *loadReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dnaload[%s]: %d arrivals at %.0f rps (chaos=%v fleet=%d) in %.1fs\n",
		r.Name, r.Runs, r.Config.RPS, r.Config.Chaos, r.Config.FleetNodes, r.ElapsedSec)
	fmt.Fprintf(&b, "  outcomes   succeeded=%d canceled=%d shed-gave-up=%d server-error=%d deadline=%d\n",
		r.Succeeded, r.Canceled, r.ShedGaveUp, r.ServerError, r.Deadline)
	fmt.Fprintf(&b, "  ledger     distinct=%d submitted=%d replays=%d shed=%d  lost=%d duplicated=%d corrupted=%d\n",
		r.DistinctJobs, r.Submitted, r.Replays, r.Shed, r.Lost, r.Duplicated, r.Corrupted)
	fmt.Fprintf(&b, "  latency ms p50=%.0f p95=%.0f p99=%.0f   shed-rate=%.3f   clusters/s=%.0f\n",
		r.LatencyMS.P50, r.LatencyMS.P95, r.LatencyMS.P99, r.ShedRate, r.ClustersPerSec)
	if r.ChaosStats != "" {
		fmt.Fprintf(&b, "  chaos      %s\n", r.ChaosStats)
	}
	return b.String()
}

// loadFile is the on-disk "dnaload/v2" container: one entry per named
// measurement (e.g. "single", "fleet").
type loadFile struct {
	Schema  string        `json:"schema"`
	Entries []*loadReport `json:"entries"`
}

// parseLoadFile reads either schema generation: a v2 multi-entry file, or
// a legacy v1 single-object report promoted to one entry named "single".
func parseLoadFile(path string, data []byte) (*loadFile, error) {
	var f loadFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: not a dnaload report: %w", path, err)
	}
	switch f.Schema {
	case "dnaload/v2":
		for _, e := range f.Entries {
			if e.Name == "" {
				e.Name = "single"
			}
		}
		return &f, nil
	case "dnaload/v1":
		var r loadReport
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: not a dnaload report: %w", path, err)
		}
		r.Name = "single"
		return &loadFile{Schema: "dnaload/v2", Entries: []*loadReport{&r}}, nil
	default:
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
}

// write lands the report at path as a v2 file, replacing the same-named
// entry and preserving the others — so the single-server and fleet drives
// can refresh one committed BENCH_serve.json independently.
func (r *loadReport) write(path string) error {
	f := &loadFile{Schema: "dnaload/v2"}
	if data, err := os.ReadFile(path); err == nil {
		if prev, perr := parseLoadFile(path, data); perr == nil {
			f.Entries = prev.Entries
		}
	}
	entry := *r
	if entry.Name == "" {
		entry.Name = "single"
	}
	entry.Schema = "" // the file carries the schema; entries don't
	replaced := false
	for i, e := range f.Entries {
		if e.Name == entry.Name {
			f.Entries[i] = &entry
			replaced = true
			break
		}
	}
	if !replaced {
		f.Entries = append(f.Entries, &entry)
	}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// loadLoadBaseline reads the named entry from a committed BENCH_serve.json.
func loadLoadBaseline(path, name string) (*loadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := parseLoadFile(path, data)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range f.Entries {
		if e.Name == name {
			return e, nil
		}
		names = append(names, e.Name)
	}
	return nil, fmt.Errorf("%s: no %q entry (have: %s); run once with -out but without -compare to seed it",
		path, name, strings.Join(names, ", "))
}

// compareLoad gates a fresh report against the committed baseline.
// Conservation is absolute (checked by the caller before any baseline
// math); the capacity gates are deliberately loose — CI machines vary —
// so they catch collapses, not noise: p95 may grow by p95Factor plus a
// fixed 100ms grace, throughput may fall to tputFrac of baseline, shed
// rate may rise by shedSlack absolute.
func compareLoad(base, cur *loadReport, p95Factor, tputFrac, shedSlack float64) error {
	var violations []string
	fmt.Fprintf(os.Stderr, "dnaload comparison (baseline vs current):\n")
	fmt.Fprintf(os.Stderr, "  %-16s %10s %10s\n", "", "baseline", "current")
	fmt.Fprintf(os.Stderr, "  %-16s %10.0f %10.0f  (gate: <= %.0f)\n", "p95 ms",
		base.LatencyMS.P95, cur.LatencyMS.P95, base.LatencyMS.P95*p95Factor+100)
	fmt.Fprintf(os.Stderr, "  %-16s %10.0f %10.0f  (gate: >= %.0f)\n", "clusters/s",
		base.ClustersPerSec, cur.ClustersPerSec, base.ClustersPerSec*tputFrac)
	fmt.Fprintf(os.Stderr, "  %-16s %10.3f %10.3f  (gate: <= %.3f)\n", "shed rate",
		base.ShedRate, cur.ShedRate, base.ShedRate+shedSlack)

	if cur.LatencyMS.P95 > base.LatencyMS.P95*p95Factor+100 {
		violations = append(violations, fmt.Sprintf("p95 latency %.0fms exceeds %.0fms baseline by more than %.1fx+100ms",
			cur.LatencyMS.P95, base.LatencyMS.P95, p95Factor))
	}
	if base.ClustersPerSec > 0 && cur.ClustersPerSec < base.ClustersPerSec*tputFrac {
		violations = append(violations, fmt.Sprintf("throughput %.0f clusters/s fell below %.0f%% of baseline %.0f",
			cur.ClustersPerSec, tputFrac*100, base.ClustersPerSec))
	}
	if cur.ShedRate > base.ShedRate+shedSlack {
		violations = append(violations, fmt.Sprintf("shed rate %.3f exceeds baseline %.3f by more than %.2f",
			cur.ShedRate, base.ShedRate, shedSlack))
	}
	if cur.Succeeded == 0 {
		violations = append(violations, "zero runs succeeded")
	}
	if len(violations) > 0 {
		return fmt.Errorf("load regression gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return nil
}
