// Command dnastore drives the key-value store (§1.1.1): files are stored
// under keys in a designed DNA pool persisted as JSON, and retrieved back
// through a simulated noisy sequencing run — PCR selection by the key's
// primer, clustering, trace reconstruction and Reed–Solomon decoding.
//
// Usage:
//
//	dnastore put  -pool pool.json -key report.pdf -file report.pdf
//	dnastore ls   -pool pool.json
//	dnastore get  -pool pool.json -key report.pdf -o out.pdf -error 0.03 -coverage 14
//
// get runs the resilient read path: on decode failure it re-sequences with
// escalated coverage (-retries, -backoff) and a fresh derived seed before
// giving up with an erasure report. -faults injects pathological channel
// conditions (cluster dropout, read truncation, contamination, dead
// regions) for drills — see internal/faults for the spec syntax.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/dist"
	"dnastore/internal/faults"
	"dnastore/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "put":
		err = cmdPut(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "get":
		err = cmdGet(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnastore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `dnastore — a DNA pool as a key-value store

subcommands:
  put  -pool <file> -key <key> -file <path>   store a file (creates the pool if absent)
  ls   -pool <file>                           list stored keys
  get  -pool <file> -key <key> -o <path>      retrieve through a simulated sequencing run
       [-error 0.02] [-coverage 14] [-seed 7] [-skew]
       [-faults dropout=0.1,truncate=0.3:0.5,contam=0.02,zerocov=4:2]
       [-retries 2] [-backoff 2.0]`)
}

// loadOrNewPool opens an existing pool file or creates a fresh pool.
func loadOrNewPool(path string, seed uint64) (*store.Pool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return store.New(store.Options{
			Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
			Seed:    seed,
		}), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.Load(f)
}

func loadPool(path string) (*store.Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.Load(f)
}

// savePoolAtomic writes the pool to a temp file in the target's directory
// and renames it into place, so a crash mid-save can never corrupt an
// existing pool file.
func savePoolAtomic(p *store.Pool, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pool-*.json")
	if err != nil {
		return err
	}
	if err := p.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func cmdPut(args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	key := fs.String("key", "", "object key (required)")
	file := fs.String("file", "", "file to store (required)")
	seed := fs.Uint64("seed", 7, "primer seed for a new pool")
	fs.Parse(args)
	if *key == "" || *file == "" {
		return fmt.Errorf("put needs -key and -file")
	}
	p, err := loadOrNewPool(*pool, *seed)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	if err := p.Store(*key, data); err != nil {
		return err
	}
	if err := savePoolAtomic(p, *pool); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stored %q (%d bytes) — pool now holds %d objects in %d strands\n",
		*key, len(data), len(p.Keys()), p.NumStrands())
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	fs.Parse(args)
	p, err := loadPool(*pool)
	if err != nil {
		return err
	}
	for _, k := range p.Keys() {
		fmt.Println(k)
	}
	fmt.Fprintf(os.Stderr, "%d objects, %d designed strands\n", len(p.Keys()), p.NumStrands())
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	key := fs.String("key", "", "object key (required)")
	out := fs.String("o", "", "output file (required)")
	errRate := fs.Float64("error", 0.02, "sequencing error rate")
	coverage := fs.Float64("coverage", 14, "mean sequencing coverage")
	seed := fs.Uint64("seed", 7, "sequencing seed")
	skew := fs.Bool("skew", false, "apply the Nanopore terminal error skew")
	faultSpec := fs.String("faults", "", "fault injection spec (e.g. dropout=0.1,truncate=0.3)")
	retries := fs.Int("retries", 2, "re-sequencing attempts after a failed decode")
	backoff := fs.Float64("backoff", 2.0, "coverage escalation factor per retry")
	fs.Parse(args)
	if *key == "" || *out == "" {
		return fmt.Errorf("get needs -key and -o")
	}
	spec, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		return err
	}
	p, err := loadPool(*pool)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		m := channel.NewNaive("sequencer", channel.NanoporeMix(*errRate))
		if *skew {
			m = m.WithSpatial(dist.NanoporeSkew())
		}
		mean := *coverage * scale
		fmt.Fprintf(os.Stderr, "attempt %d: sequencing at %.1fx coverage, %.1f%% error\n",
			attempt, mean, *errRate*100)
		return spec.Wrap(m, channel.NegBinCoverage{Mean: mean, Dispersion: 6})
	}
	pol := store.RetryPolicy{
		MaxAttempts: *retries + 1,
		Backoff:     *backoff,
		OnAttempt: func(attempt int, rep store.RetrieveReport, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "attempt %d failed: %v\n", attempt, err)
			}
		},
	}
	data, rep, attempts, err := p.RetrieveAdaptive(ctx, *key, factory, pol, *seed)
	if err != nil {
		var pre *store.PartialRecoveryError
		if errors.As(err, &pre) {
			// Surface the erasure report before the non-zero exit so
			// operators see exactly which strands are gone, not just a
			// decode error.
			fmt.Fprintf(os.Stderr, "erasure report after %d attempts: %s\n", attempts, rep.Summary())
			if errors.Is(pre.Err, context.Canceled) {
				return fmt.Errorf("get %q interrupted", *key)
			}
		}
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recovered %q: %d bytes -> %s (attempt %d; %s)\n",
		*key, len(data), *out, attempts, rep.Summary())
	return nil
}
