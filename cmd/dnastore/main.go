// Command dnastore drives the key-value store (§1.1.1): files are stored
// under keys in a designed DNA pool persisted as JSON, and retrieved back
// through a simulated noisy sequencing run — PCR selection by the key's
// primer, clustering, trace reconstruction and Reed–Solomon decoding.
//
// Usage:
//
//	dnastore put  -pool pool.json -key report.pdf -file report.pdf
//	dnastore ls   -pool pool.json
//	dnastore get  -pool pool.json -key report.pdf -o out.pdf -error 0.03 -coverage 14
//
// get runs the resilient read path: on decode failure it re-sequences with
// escalated coverage (-retries, -backoff) and a fresh derived seed before
// giving up with an erasure report. -faults injects pathological channel
// conditions (cluster dropout, read truncation, contamination, dead
// regions) for drills — see internal/faults for the spec syntax.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/dist"
	"dnastore/internal/durable"
	"dnastore/internal/faults"
	"dnastore/internal/obs"
	"dnastore/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "put":
		err = cmdPut(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "get":
		err = cmdGet(os.Args[2:])
	case "scrub":
		err = cmdScrub(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnastore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `dnastore — a DNA pool as a key-value store

subcommands:
  put  -pool <file> -key <key> -file <path>   store a file (creates the pool if absent)
  ls   -pool <file>                           list stored keys
  get  -pool <file> -key <key> -o <path>      retrieve through a simulated sequencing run
       [-error 0.02] [-coverage 14] [-seed 7] [-skew]
       [-faults dropout=0.1,truncate=0.3:0.5,contam=0.02,zerocov=4:2]
       [-retries 2] [-backoff 2.0] [-timeout 30s]
  scrub [-repair] <file|dir> ...              verify container checksums; -repair rewrites
                                              what Reed-Solomon parity can restore`)
}

// loadOrNewPool opens an existing pool file or creates a fresh pool.
func loadOrNewPool(path string, seed uint64) (*store.Pool, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return store.New(store.Options{
			Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
			Seed:    seed,
		}), nil
	} else if err != nil {
		return nil, err
	}
	return loadPool(path)
}

// loadPool reads a pool file — durable container or legacy bare JSON, with
// a deprecation nudge for the latter.
func loadPool(path string) (*store.Pool, error) {
	p, legacy, err := store.LoadFile(path)
	if legacy && err == nil {
		fmt.Fprintf(os.Stderr, "dnastore: %s is a legacy JSON pool without checksums; re-save (e.g. via put) to upgrade\n", path)
	}
	return p, err
}

func cmdPut(args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	key := fs.String("key", "", "object key (required)")
	file := fs.String("file", "", "file to store (required)")
	seed := fs.Uint64("seed", 7, "primer seed for a new pool")
	logOpts := obs.LogFlags(fs)
	fs.Parse(args)
	if *key == "" || *file == "" {
		return fmt.Errorf("put needs -key and -file")
	}
	logger := logOpts.Logger("dnastore")
	p, err := loadOrNewPool(*pool, *seed)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	if err := p.Store(*key, data); err != nil {
		return err
	}
	if err := p.SaveFile(*pool); err != nil {
		return err
	}
	logger.Debug("object stored", "key", *key, "bytes", len(data),
		"objects", len(p.Keys()), "strands", p.NumStrands())
	fmt.Fprintf(os.Stderr, "stored %q (%d bytes) — pool now holds %d objects in %d strands\n",
		*key, len(data), len(p.Keys()), p.NumStrands())
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	fs.Parse(args)
	p, err := loadPool(*pool)
	if err != nil {
		return err
	}
	for _, k := range p.Keys() {
		fmt.Println(k)
	}
	fmt.Fprintf(os.Stderr, "%d objects, %d designed strands\n", len(p.Keys()), p.NumStrands())
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	key := fs.String("key", "", "object key (required)")
	out := fs.String("o", "", "output file (required)")
	errRate := fs.Float64("error", 0.02, "sequencing error rate")
	coverage := fs.Float64("coverage", 14, "mean sequencing coverage")
	seed := fs.Uint64("seed", 7, "sequencing seed")
	skew := fs.Bool("skew", false, "apply the Nanopore terminal error skew")
	faultSpec := fs.String("faults", "", "fault injection spec (e.g. dropout=0.1,truncate=0.3)")
	retries := fs.Int("retries", 2, "re-sequencing attempts after a failed decode")
	backoff := fs.Float64("backoff", 2.0, "coverage escalation factor per retry")
	timeout := fs.Duration("timeout", 0, "give up on the retrieval after this long (0 = unbounded)")
	logOpts := obs.LogFlags(fs)
	fs.Parse(args)
	if *key == "" || *out == "" {
		return fmt.Errorf("get needs -key and -o")
	}
	logger := logOpts.Logger("dnastore")
	spec, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		return err
	}
	p, err := loadPool(*pool)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stages := obs.NewStageTimer()
	ctx = obs.WithTimer(ctx, stages)
	defer func() {
		if summary := stages.Summary(); summary != "" {
			logger.Debug("stage timings", "stages", summary)
		}
	}()

	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		m := channel.NewNaive("sequencer", channel.NanoporeMix(*errRate))
		if *skew {
			m = m.WithSpatial(dist.NanoporeSkew())
		}
		mean := *coverage * scale
		fmt.Fprintf(os.Stderr, "attempt %d: sequencing at %.1fx coverage, %.1f%% error\n",
			attempt, mean, *errRate*100)
		return spec.Wrap(m, channel.NegBinCoverage{Mean: mean, Dispersion: 6})
	}
	pol := store.RetryPolicy{
		MaxAttempts: *retries + 1,
		Backoff:     *backoff,
		OnAttempt: func(attempt int, rep store.RetrieveReport, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "attempt %d failed: %v\n", attempt, err)
			}
		},
	}
	data, rep, attempts, err := p.RetrieveAdaptive(ctx, *key, factory, pol, *seed)
	if err != nil {
		var pre *store.PartialRecoveryError
		if errors.As(err, &pre) {
			// Surface the erasure report before the non-zero exit so
			// operators see exactly which strands are gone, not just a
			// decode error.
			fmt.Fprintf(os.Stderr, "erasure report after %d attempts: %s\n", attempts, rep.Summary())
			// "Told to stop" reads differently from "gave up": a canceled
			// or timed-out retrieval is not evidence the data is gone.
			if pre.Canceled() {
				if errors.Is(pre.Err, context.DeadlineExceeded) {
					return fmt.Errorf("get %q timed out after %s", *key, *timeout)
				}
				return fmt.Errorf("get %q interrupted", *key)
			}
		}
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recovered %q: %d bytes -> %s (attempt %d; %s)\n",
		*key, len(data), *out, attempts, rep.Summary())
	return nil
}

// cmdScrub verifies (and with -repair, restores) durable container files.
// Arguments are files or directories; directories are walked recursively.
// The exit status is non-zero if any file is left damaged.
func cmdScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	repair := fs.Bool("repair", false, "rewrite files whose damage is within the parity budget")
	logOpts := obs.LogFlags(fs)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("scrub needs at least one file or directory")
	}
	logger := logOpts.Logger("dnastore")
	var paths []string
	for _, root := range fs.Args() {
		info, err := os.Stat(root)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			paths = append(paths, root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				paths = append(paths, p)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}

	unhealthy := 0
	for _, path := range paths {
		rep, err := scrubOne(path, *repair)
		if err != nil {
			return err
		}
		if rep == nil {
			continue
		}
		fmt.Printf("%s: %s\n", path, rep.Summary())
		for _, s := range rep.Sections {
			if s.Status != durable.SectionOK {
				fmt.Printf("  section %d %q (%d bytes): %s", s.Index, s.Name, s.Bytes, s.Status)
				if s.Status == durable.SectionRepaired {
					fmt.Printf(" (%d symbols corrected)", s.Corrected)
				}
				fmt.Println()
			}
		}
		healthy := rep.Intact() || rep.Legacy
		if isJournalPath(path) {
			healthy = durable.JournalIntact(rep) || rep.Legacy
		}
		if *repair && rep.Damaged() && rep.Repairable() && !isJournalPath(path) {
			healthy = true
			fmt.Printf("  repaired: %s rewritten from parity\n", path)
		}
		if !healthy {
			unhealthy++
		}
	}
	logger.Debug("scrub complete", "files", len(paths), "damaged", unhealthy, "repair", *repair)
	if unhealthy > 0 {
		return fmt.Errorf("scrub: %d of %d files damaged", unhealthy, len(paths))
	}
	return nil
}

// scrubOne scrubs (or repairs) a single path; a nil report means the file
// is not scrub-relevant (unreadable non-regular files are surfaced as
// errors instead). Journals — checkpoint `.ckpt` files and coordinator
// ledger `.wal` files — are footer-less by design and get the journal
// scrub, which accepts a stream ending on a frame boundary.
func scrubOne(path string, repair bool) (*durable.Report, error) {
	if isJournalPath(path) {
		// Repair-by-rewrite would append the footer journals must not
		// have, so journals are verify-only here; a torn tail heals on the
		// next OpenJournal anyway.
		return durable.ScrubJournalFile(path)
	}
	if repair {
		return durable.RepairFile(path)
	}
	return durable.ScrubFile(path)
}

// isJournalPath recognises append-only journal artifacts by suffix.
func isJournalPath(path string) bool {
	switch filepath.Ext(path) {
	case ".ckpt", ".wal":
		return true
	}
	return false
}
