// Command dnastore drives the key-value store (§1.1.1): files are stored
// under keys in a designed DNA pool persisted as JSON, and retrieved back
// through a simulated noisy sequencing run — PCR selection by the key's
// primer, clustering, trace reconstruction and Reed–Solomon decoding.
//
// Usage:
//
//	dnastore put  -pool pool.json -key report.pdf -file report.pdf
//	dnastore ls   -pool pool.json
//	dnastore get  -pool pool.json -key report.pdf -o out.pdf -error 0.03 -coverage 14
package main

import (
	"flag"
	"fmt"
	"os"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/dist"
	"dnastore/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "put":
		err = cmdPut(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "get":
		err = cmdGet(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnastore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `dnastore — a DNA pool as a key-value store

subcommands:
  put  -pool <file> -key <key> -file <path>   store a file (creates the pool if absent)
  ls   -pool <file>                           list stored keys
  get  -pool <file> -key <key> -o <path>      retrieve through a simulated sequencing run
       [-error 0.02] [-coverage 14] [-seed 7] [-skew]`)
}

// loadOrNewPool opens an existing pool file or creates a fresh pool.
func loadOrNewPool(path string, seed uint64) (*store.Pool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return store.New(store.Options{
			Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
			Seed:    seed,
		}), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.Load(f)
}

func loadPool(path string) (*store.Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.Load(f)
}

func cmdPut(args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	key := fs.String("key", "", "object key (required)")
	file := fs.String("file", "", "file to store (required)")
	seed := fs.Uint64("seed", 7, "primer seed for a new pool")
	fs.Parse(args)
	if *key == "" || *file == "" {
		return fmt.Errorf("put needs -key and -file")
	}
	p, err := loadOrNewPool(*pool, *seed)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	if err := p.Store(*key, data); err != nil {
		return err
	}
	out, err := os.Create(*pool)
	if err != nil {
		return err
	}
	if err := p.Save(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stored %q (%d bytes) — pool now holds %d objects in %d strands\n",
		*key, len(data), len(p.Keys()), p.NumStrands())
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	fs.Parse(args)
	p, err := loadPool(*pool)
	if err != nil {
		return err
	}
	for _, k := range p.Keys() {
		fmt.Println(k)
	}
	fmt.Fprintf(os.Stderr, "%d objects, %d designed strands\n", len(p.Keys()), p.NumStrands())
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	pool := fs.String("pool", "pool.json", "pool file")
	key := fs.String("key", "", "object key (required)")
	out := fs.String("o", "", "output file (required)")
	errRate := fs.Float64("error", 0.02, "sequencing error rate")
	coverage := fs.Float64("coverage", 14, "mean sequencing coverage")
	seed := fs.Uint64("seed", 7, "sequencing seed")
	skew := fs.Bool("skew", false, "apply the Nanopore terminal error skew")
	fs.Parse(args)
	if *key == "" || *out == "" {
		return fmt.Errorf("get needs -key and -o")
	}
	p, err := loadPool(*pool)
	if err != nil {
		return err
	}
	ch := channel.NewNaive("sequencer", channel.NanoporeMix(*errRate))
	if *skew {
		ch = ch.WithSpatial(dist.NanoporeSkew())
	}
	reads := p.Sequence(ch, channel.NegBinCoverage{Mean: *coverage, Dispersion: 6}, *seed)
	fmt.Fprintf(os.Stderr, "sequenced the pool: %d reads at %.1f%% error\n", len(reads), *errRate*100)
	data, err := p.Retrieve(*key, reads)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recovered %q: %d bytes -> %s\n", *key, len(data), *out)
	return nil
}
