// Command dnabench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Tables print as
// aligned text; figures print as ASCII profiles, and -csv <dir> writes the
// machine-readable data for external plotting.
//
// Usage:
//
//	dnabench                 # run everything at quick scale (600 clusters)
//	dnabench -full           # the paper's full scale (10,000 clusters)
//	dnabench -exp table3.1   # one experiment
//	dnabench -list           # list experiment IDs
//	dnabench -csv out/       # also write CSV files
//	dnabench -json BENCH_sim.json   # benchmark the simulate hot paths, write JSON
//	dnabench -compare BENCH_sim.json -compare-report BENCH_compare.txt
//	                         # re-measure and fail on >15% ns/op regression
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"dnastore/internal/experiments"
	"dnastore/internal/obs"
)

func main() {
	var (
		full     = flag.Bool("full", false, "run at the paper's full scale (10,000 clusters)")
		clusters = flag.Int("clusters", 0, "override cluster count")
		seed     = flag.Uint64("seed", 1, "random seed")
		expID    = flag.String("exp", "", "run a single experiment by ID")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir   = flag.String("csv", "", "directory to write CSV outputs into")
		svgDir   = flag.String("svg", "", "directory to write SVG figures into")
		jsonOut  = flag.String("json", "", "benchmark the simulate hot paths and write machine-readable results to this path, then exit")
		compare  = flag.String("compare", "", "benchmark the simulate hot paths and compare against this baseline JSON; exit 1 on regression")
		cmpOut   = flag.String("compare-report", "", "with -compare: also write the comparison report to this path")
		cmpTol   = flag.Float64("compare-tolerance", 0.15, "with -compare: fractional ns/op regression that fails the gate")
		logOpts  = obs.LogFlags(flag.CommandLine)
	)
	flag.Parse()
	logger := logOpts.Logger("dnabench")

	if *compare != "" {
		if err := compareBench(*compare, *cmpOut, *cmpTol, *seed); err != nil {
			fail(err)
		}
		return
	}
	if *jsonOut != "" {
		if err := runJSONBench(*jsonOut, *seed); err != nil {
			fail(err)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
		return
	}

	scale := experiments.QuickScale()
	if *full {
		scale = experiments.FullScale()
	}
	if *clusters > 0 {
		scale.Clusters = *clusters
	}
	scale.Seed = *seed

	entries := experiments.Registry()
	if *expID != "" {
		e, err := experiments.Lookup(*expID)
		if err != nil {
			fail(err)
		}
		entries = []experiments.Entry{e}
	}

	// SIGINT drains gracefully: the workbench generation stops between
	// clusters, the current experiment finishes, and everything already
	// rendered or written stays on disk as partial results.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	needWB := false
	for _, e := range entries {
		if e.NeedsWorkbench {
			needWB = true
		}
	}
	var wb *experiments.Workbench
	if needWB {
		fmt.Fprintf(os.Stderr, "generating wetlab dataset (%d clusters) and calibrating...\n", scale.Clusters)
		start := time.Now()
		var err error
		wb, err = experiments.NewWorkbenchCtx(ctx, scale)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "workbench ready in %v: %s\n", time.Since(start).Round(time.Millisecond), wb.Profile.Summary())
	}

	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail(err)
			}
		}
	}

	for _, e := range entries {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "dnabench: interrupted — partial results written")
			os.Exit(130)
		}
		start := time.Now()
		results, err := e.Run(wb, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			continue
		}
		for i, r := range results {
			fmt.Println(r.Render())
			name := sanitize(e.ID)
			if len(results) > 1 {
				name = fmt.Sprintf("%s_%d", name, i+1)
			}
			if *csvDir != "" {
				path := filepath.Join(*csvDir, name+".csv")
				if err := os.WriteFile(path, []byte(r.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				}
			}
			if *svgDir != "" {
				if s, ok := r.(experiments.Series); ok {
					path := filepath.Join(*svgDir, name+".svg")
					if err := os.WriteFile(path, []byte(s.SVG()), 0o644); err != nil {
						fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
					}
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
		logger.Debug("experiment done", "id", e.ID, "results", len(results),
			"elapsed", time.Since(start).Round(time.Millisecond))
	}
}

func sanitize(id string) string {
	return strings.NewReplacer(".", "_", "/", "_", " ", "_").Replace(id)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dnabench:", err)
	os.Exit(1)
}
