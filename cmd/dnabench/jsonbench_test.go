package main

import "testing"

// preFixAllocRegressed replicates the alloc gate as it stood before
// allocRegressed was extracted: the fractional delta was only computed
// when the baseline was positive, so a zero-alloc baseline left it at 0
// and ANY growth — 0 -> 1000 included — sailed through the gate. Kept
// here as the executable statement of the bug the tests below pin.
func preFixAllocRegressed(baseline, current int64, tolerance float64) bool {
	allocDelta := 0.0
	if baseline > 0 {
		allocDelta = float64(current-baseline) / float64(baseline)
	}
	return allocDelta > tolerance && current-baseline > 8
}

// TestAllocRegressedZeroBaseline is the regression test for the blind
// spot: with a zero-alloc baseline, growth beyond the absolute grace must
// trip the gate. Run against preFixAllocRegressed, the first assertion
// fails — that logic passed 0 -> 1000.
func TestAllocRegressedZeroBaseline(t *testing.T) {
	if !allocRegressed(0, 1000, 0.15) {
		t.Fatal("0 -> 1000 allocs/op must regress: zero baseline may not disable the gate")
	}
	if !allocRegressed(0, allocGrace+1, 0.15) {
		t.Fatalf("0 -> %d allocs/op must regress (first count past the grace)", allocGrace+1)
	}
	if allocRegressed(0, allocGrace, 0.15) {
		t.Fatalf("0 -> %d allocs/op is within the absolute grace and must pass", allocGrace)
	}
	if allocRegressed(0, 0, 0.15) {
		t.Fatal("0 -> 0 allocs/op must pass")
	}
	// Document the pre-fix behaviour so the fixture itself stays honest:
	// the old logic was blind to exactly the case above.
	if preFixAllocRegressed(0, 1000, 0.15) {
		t.Fatal("fixture error: the pre-fix logic was expected to miss 0 -> 1000")
	}
}

// TestAllocRegressedPositiveBaseline checks the fractional gate and the
// absolute grace are unchanged for ordinary baselines.
func TestAllocRegressedPositiveBaseline(t *testing.T) {
	cases := []struct {
		baseline, current int64
		tolerance         float64
		want              bool
	}{
		{100, 100, 0.15, false},           // unchanged
		{100, 90, 0.15, false},            // improvement
		{100, 110, 0.15, false},           // +10% under a 15% tolerance
		{100, 130, 0.15, true},            // +30% and +30 absolute
		{10, 12, 0.15, false},             // +20% but within the 8-alloc grace
		{10, 19, 0.15, true},              // +90% and past the grace
		{1000, 1005, 0.001, false},        // +0.5% over a 0.1% tolerance but within grace
		{1000, 1200, 0.15, true},          // +20%
		{8275, 1208, 0.15, false},         // the large improvement this PR lands
	}
	for _, c := range cases {
		if got := allocRegressed(c.baseline, c.current, c.tolerance); got != c.want {
			t.Errorf("allocRegressed(%d, %d, %g) = %v, want %v",
				c.baseline, c.current, c.tolerance, got, c.want)
		}
	}
}
