package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// The -json / -compare benchmark modes: machine-readable measurements of
// the simulate hot path — channel.Simulator.Simulate over fixed synthetic
// workloads — written as one JSON document so CI can archive BENCH_sim.json
// per commit, and diffed against a committed baseline so throughput
// regressions fail the build instead of landing silently.
// testing.Benchmark gives the same adaptive iteration count and allocation
// accounting as `go test -bench` without needing the test harness.

// benchResult is one entry of the BENCH_sim.json schema. Field names are
// stable: CI artifacts are compared across commits.
type benchResult struct {
	// Name identifies the measured path.
	Name string `json:"name"`
	// Clusters, RefLen and Coverage pin the workload shape.
	Clusters int `json:"clusters"`
	RefLen   int `json:"ref_len"`
	Coverage int `json:"coverage"`
	// Iterations is the adaptive b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per full simulation (all clusters).
	NsPerOp int64 `json:"ns_per_op"`
	// ClustersPerSec is the simulate throughput CI tracks.
	ClustersPerSec float64 `json:"clusters_per_sec"`
	// AllocsPerOp and BytesPerOp track allocation behaviour.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// GoVersion and GOMAXPROCS contextualise cross-machine numbers.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// benchWorkload is one named hot-path configuration. Most workloads
// measure Simulator.Simulate end to end via the simulate factory; a
// workload may instead supply run to measure a narrower path directly
// (the packed transmit kernels). zeroAlloc marks workloads whose steady
// state must not allocate at all — the measurement itself fails, in both
// -json and -compare modes, if allocs/op is nonzero.
type benchWorkload struct {
	name      string
	clusters  int
	refLen    int
	coverage  int
	simulate  func() channel.Simulator
	run       func(b *testing.B, seed uint64)
	zeroAlloc bool
}

// secondOrderBenchModel builds the paper's full "+ 2nd-order Errors" tier:
// spatial skew plus specific errors with their own histograms — the
// workload whose per-position second-order scans and (formerly) mutex
// traffic dominate Transmit cost.
func secondOrderBenchModel() *channel.Model {
	m := channel.NewNaive("bench-2so", channel.NanoporeMix(0.059))
	m.LongDel = channel.PaperLongDeletion()
	m.InsDist = [dna.NumBases]float64{0.3, 0.2, 0.2, 0.3}
	tail := make([]float64, 300)
	for i := range tail {
		tail[i] = 1
	}
	tail[299] = 40
	return m.WithSpatial(dist.NanoporeSkew()).WithSecondOrder([]channel.SecondOrderError{
		{Kind: align.Del, From: dna.G, Rate: 0.011, Spatial: []float64{1, 1, 1, 1, 8}},
		{Kind: align.Sub, From: dna.A, To: dna.G, Rate: 0.006},
		{Kind: align.Ins, To: dna.T, Rate: 0.002, Spatial: tail},
	})
}

// benchWorkloads returns the measured configurations. "channel.simulate"
// keeps its original shape for cross-commit continuity; the second entry
// is the second-order + spatial acceptance workload under heavy-tailed
// coverage, which exercises the compiled plan and the work-stealing
// scheduler together.
func benchWorkloads() []benchWorkload {
	return []benchWorkload{
		{
			name: "channel.simulate", clusters: 200, refLen: 110, coverage: 8,
			simulate: func() channel.Simulator {
				return channel.Simulator{
					Channel:  channel.NewNaive("bench", channel.Rates{Sub: 0.01, Ins: 0.005, Del: 0.02}),
					Coverage: channel.FixedCoverage(8),
				}
			},
		},
		{
			name: "channel.simulate/secondorder-spatial", clusters: 400, refLen: 110, coverage: 10,
			simulate: func() channel.Simulator {
				return channel.Simulator{
					Channel:  secondOrderBenchModel(),
					Coverage: channel.NegBinCoverage{Mean: 10, Dispersion: 1.2},
				}
			},
		},
		// The packed transmit kernels, measured read by read through the
		// AppendTransmit arena path — the default path every simulation
		// worker takes. These must run allocation-free: a nonzero allocs/op
		// means a lost pooling or escape-analysis optimisation, and the
		// zeroAlloc flag fails the measurement outright rather than relying
		// on the baseline diff to notice.
		{
			name: "channel.transmit/secondorder-append", refLen: 110, coverage: 1, zeroAlloc: true,
			run: func(b *testing.B, seed uint64) {
				benchAppendTransmit(b, secondOrderBenchModel(), 110, seed)
			},
		},
		{
			name: "channel.transmit/dnasimulator-append", refLen: 110, coverage: 1, zeroAlloc: true,
			run: func(b *testing.B, seed uint64) {
				benchAppendTransmit(b, channel.NewDNASimulator("bench", channel.DefaultNanoporeDict()), 110, seed)
			},
		},
		{
			// The full four-stage pipeline through one AppendTransmit call:
			// every intermediate stage bounces through the Scratch
			// double-buffer, so this is the regression canary for the
			// pipeline staying off the allocator end to end.
			name: "channel.transmit/pipeline-append", refLen: 110, coverage: 1, zeroAlloc: true,
			run: func(b *testing.B, seed uint64) {
				benchAppendTransmit(b, channel.NewStoragePipeline("bench-pipe", 0.059, 10), 110, seed)
			},
		},
	}
}

// benchAppendTransmit measures one channel's AppendTransmit steady state:
// reference decoded once, output buffer and RNG batch reused from a
// per-worker Scratch, exactly as simulation workers drive it.
func benchAppendTransmit(b *testing.B, at channel.AppendTransmitter, refLen int, seed uint64) {
	ref := channel.RandomReferences(1, refLen, seed)[0]
	r := rng.New(seed)
	var scr channel.Scratch
	codes := scr.RefBases(ref)
	// Warm outside the timer: plan compilation and output-buffer growth are
	// one-time costs, not steady state.
	dst := at.AppendTransmit(nil, codes, r, &scr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = at.AppendTransmit(dst[:0], codes, r, &scr)
	}
}

// measure runs one workload under testing.Benchmark.
func measure(w benchWorkload, seed uint64) (benchResult, error) {
	var res testing.BenchmarkResult
	if w.run != nil {
		res = testing.Benchmark(func(b *testing.B) { w.run(b, seed) })
	} else {
		refs := channel.RandomReferences(w.clusters, w.refLen, seed)
		sim := w.simulate()
		// Warm once outside the measurement so one-time setup (page faults,
		// plan compilation) doesn't pollute the first iteration.
		sim.Simulate("bench", refs, seed)

		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim.Simulate("bench", refs, seed)
			}
		})
	}
	if res.N == 0 {
		return benchResult{}, fmt.Errorf("benchmark %s did not run", w.name)
	}
	if w.zeroAlloc && res.AllocsPerOp() != 0 {
		return benchResult{}, fmt.Errorf("%s: %d allocs/op on a path that must not allocate", w.name, res.AllocsPerOp())
	}
	return benchResult{
		Name:           w.name,
		Clusters:       w.clusters,
		RefLen:         w.refLen,
		Coverage:       w.coverage,
		Iterations:     res.N,
		NsPerOp:        res.NsPerOp(),
		ClustersPerSec: float64(w.clusters) / (time.Duration(res.NsPerOp()) * time.Nanosecond).Seconds(),
		AllocsPerOp:    res.AllocsPerOp(),
		BytesPerOp:     res.AllocedBytesPerOp(),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}, nil
}

// measureAll runs every workload.
func measureAll(seed uint64) ([]benchResult, error) {
	var out []benchResult
	for _, w := range benchWorkloads() {
		r, err := measure(w, seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "dnabench: %s: %d iterations, %.0f clusters/s, %d allocs/op\n",
			r.Name, r.Iterations, r.ClustersPerSec, r.AllocsPerOp)
		out = append(out, r)
	}
	return out, nil
}

// runJSONBench measures the hot paths and writes BENCH_sim.json to path.
func runJSONBench(path string, seed uint64) error {
	results, err := measureAll(seed)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dnabench: wrote %d measurements -> %s\n", len(results), path)
	return nil
}

// loadBaseline reads a BENCH_sim.json, accepting both the current array
// schema and the original single-object schema.
func loadBaseline(path string) ([]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []benchResult
	if err := json.Unmarshal(data, &list); err == nil {
		return list, nil
	}
	var one benchResult
	if err := json.Unmarshal(data, &one); err == nil && one.Name != "" {
		return []benchResult{one}, nil
	}
	return nil, fmt.Errorf("%s: not a benchmark baseline (array or single object)", path)
}

// allocGrace is the absolute allocs/op slack the gate always allows: ±a
// few allocs on a small-count path is measurement jitter (pool misses,
// map growth timing), not a regression.
const allocGrace = 8

// allocRegressed reports whether current allocs/op regresses against
// baseline under the fractional tolerance. A positive baseline gates on
// the fraction, with allocGrace of absolute slack so ±1 alloc on a
// 10-alloc path doesn't flake the build. A zero baseline cannot express a
// fraction — and a zero-alloc path starting to allocate is exactly the
// regression the gate exists to catch, so dividing by it must not
// silently disable the gate — so it falls back to absolute growth beyond
// allocGrace.
func allocRegressed(baseline, current int64, tolerance float64) bool {
	if baseline <= 0 {
		return current > allocGrace
	}
	return float64(current-baseline)/float64(baseline) > tolerance && current-baseline > allocGrace
}

// compareBench measures every workload, diffs ns/op and allocs/op against
// the baseline at path, and renders a report. It returns an error listing
// every workload whose ns/op regressed by more than tolerance (fractional,
// e.g. 0.15 = +15%), or whose allocs/op regressed per allocRegressed —
// allocation count is deterministic enough to gate tightly, and a
// regression there is usually a lost pooling or escape-analysis
// optimisation that ns/op noise can mask. Baseline entries with no
// current counterpart — and new workloads absent from the baseline — are
// reported but never fail the gate, so workloads can be added or retired
// without breaking the build.
func compareBench(baselinePath, reportPath string, tolerance float64, seed uint64) error {
	baseline, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	current, err := measureAll(seed)
	if err != nil {
		return err
	}
	base := make(map[string]benchResult, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b
	}

	var report strings.Builder
	fmt.Fprintf(&report, "benchmark comparison vs %s (gate: >%+.0f%% ns/op or allocs/op)\n\n", baselinePath, tolerance*100)
	fmt.Fprintf(&report, "%-40s %14s %14s %9s %12s %12s %9s\n",
		"workload", "baseline ns/op", "current ns/op", "delta", "clusters/s", "allocs/op", "Δallocs")
	var regressions []string
	for _, c := range current {
		b, ok := base[c.Name]
		if !ok {
			fmt.Fprintf(&report, "%-40s %14s %14d %9s %12.0f %12d %9s  (new workload, not gated)\n",
				c.Name, "-", c.NsPerOp, "-", c.ClustersPerSec, c.AllocsPerOp, "-")
			continue
		}
		delta := float64(c.NsPerOp-b.NsPerOp) / float64(b.NsPerOp)
		verdict := ""
		if delta > tolerance {
			verdict = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d ns/op (%+.1f%%)", c.Name, b.NsPerOp, c.NsPerOp, delta*100))
		}
		// Render the alloc delta fractionally when the baseline can express
		// one, absolutely when it is zero (0 -> N is an infinite fraction).
		allocCol := ""
		if b.AllocsPerOp > 0 {
			allocDelta := float64(c.AllocsPerOp-b.AllocsPerOp) / float64(b.AllocsPerOp)
			allocCol = fmt.Sprintf("%+8.1f%%", allocDelta*100)
		} else {
			allocCol = fmt.Sprintf("%+9d", c.AllocsPerOp-b.AllocsPerOp)
		}
		if allocRegressed(b.AllocsPerOp, c.AllocsPerOp, tolerance) {
			verdict = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d allocs/op (%s)", c.Name, b.AllocsPerOp, c.AllocsPerOp, strings.TrimSpace(allocCol)))
		}
		fmt.Fprintf(&report, "%-40s %14d %14d %+8.1f%% %12.0f %12d %s%s\n",
			c.Name, b.NsPerOp, c.NsPerOp, delta*100, c.ClustersPerSec, c.AllocsPerOp, allocCol, verdict)
		delete(base, c.Name)
	}
	for name := range base {
		fmt.Fprintf(&report, "%-40s  (baseline entry with no current measurement)\n", name)
	}

	if reportPath != "" {
		if err := os.WriteFile(reportPath, []byte(report.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprint(os.Stderr, report.String())
	if len(regressions) > 0 {
		return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}
