package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"dnastore/internal/channel"
)

// The -json benchmark mode: a machine-readable measurement of the simulate
// hot path — channel.Simulator.Simulate over a fixed synthetic workload —
// written as one JSON document so CI can archive BENCH_sim.json per commit
// and diff throughput across history. testing.Benchmark gives the same
// adaptive iteration count and allocation accounting as `go test -bench`
// without needing the test harness.

// benchResult is the BENCH_sim.json schema. Field names are stable: CI
// artifacts are compared across commits.
type benchResult struct {
	// Name identifies the measured path.
	Name string `json:"name"`
	// Clusters, RefLen and Coverage pin the workload shape.
	Clusters int `json:"clusters"`
	RefLen   int `json:"ref_len"`
	Coverage int `json:"coverage"`
	// Iterations is the adaptive b.N testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per full simulation (all clusters).
	NsPerOp int64 `json:"ns_per_op"`
	// ClustersPerSec is the simulate throughput CI tracks.
	ClustersPerSec float64 `json:"clusters_per_sec"`
	// AllocsPerOp and BytesPerOp track allocation behaviour.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// GoVersion and GOMAXPROCS contextualise cross-machine numbers.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// runJSONBench measures the simulate hot path and writes BENCH_sim.json to
// path.
func runJSONBench(path string, seed uint64) error {
	const (
		clusters = 200
		refLen   = 110
		coverage = 8
	)
	refs := channel.RandomReferences(clusters, refLen, seed)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("bench", channel.Rates{Sub: 0.01, Ins: 0.005, Del: 0.02}),
		Coverage: channel.FixedCoverage(coverage),
	}
	// Warm once outside the measurement so one-time setup (page faults,
	// lazy tables) doesn't pollute the first iteration.
	sim.Simulate("bench", refs, seed)

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.Simulate("bench", refs, seed)
		}
	})
	if res.N == 0 {
		return fmt.Errorf("benchmark did not run")
	}

	out := benchResult{
		Name:           "channel.simulate",
		Clusters:       clusters,
		RefLen:         refLen,
		Coverage:       coverage,
		Iterations:     res.N,
		NsPerOp:        res.NsPerOp(),
		ClustersPerSec: float64(clusters) / (time.Duration(res.NsPerOp()) * time.Nanosecond).Seconds(),
		AllocsPerOp:    res.AllocsPerOp(),
		BytesPerOp:     res.AllocedBytesPerOp(),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dnabench: %s: %d iterations, %.0f clusters/s, %d allocs/op -> %s\n",
		out.Name, out.Iterations, out.ClustersPerSec, out.AllocsPerOp, path)
	return nil
}
