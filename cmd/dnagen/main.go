// Command dnagen generates the synthetic "real Nanopore" dataset — the
// wetlab stand-in described in DESIGN.md §2 — and writes it in the cluster
// text format (reference, separator, noisy reads, blank line).
//
// Usage:
//
//	dnagen -clusters 10000 -len 110 -coverage 26.97 -error 0.059 -o nanopore.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnastore/internal/obs"
	"dnastore/internal/seqio"
	"dnastore/internal/wetlab"
)

func main() {
	cfg := wetlab.DefaultConfig()
	var out string
	flag.IntVar(&cfg.NumClusters, "clusters", cfg.NumClusters, "number of reference strands")
	flag.IntVar(&cfg.StrandLen, "len", cfg.StrandLen, "reference strand length")
	flag.Float64Var(&cfg.MeanCoverage, "coverage", cfg.MeanCoverage, "mean sequencing coverage")
	flag.Float64Var(&cfg.Dispersion, "dispersion", cfg.Dispersion, "negative-binomial coverage dispersion")
	flag.Float64Var(&cfg.ErrorRate, "error", cfg.ErrorRate, "aggregate per-base error rate")
	flag.Float64Var(&cfg.ErasureP, "erasures", cfg.ErasureP, "whole-cluster erasure probability")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	format := flag.String("format", "clusters", "output format: clusters (text), fastq (refs FASTA + reads FASTQ)")
	flag.StringVar(&out, "o", "-", "output file (- for stdout); with -format fastq, the base name for <out>.fasta/<out>.fastq")
	logOpts := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	cfg.Seed = *seed
	logger := logOpts.Logger("dnagen")

	start := time.Now()
	ds, err := wetlab.Generate(cfg)
	if err != nil {
		fail(err)
	}
	logger.Debug("dataset generated", "clusters", cfg.NumClusters, "len", cfg.StrandLen,
		"coverage", cfg.MeanCoverage, "error_rate", cfg.ErrorRate, "seed", cfg.Seed,
		"elapsed", time.Since(start).Round(time.Millisecond))
	switch *format {
	case "clusters":
		w := os.Stdout
		if out != "-" {
			f, err := os.Create(out)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := ds.Write(w); err != nil {
			fail(err)
		}
	case "fastq":
		if out == "-" {
			fail(fmt.Errorf("-format fastq needs -o <basename>"))
		}
		rf, err := os.Create(out + ".fasta")
		if err != nil {
			fail(err)
		}
		defer rf.Close()
		qf, err := os.Create(out + ".fastq")
		if err != nil {
			fail(err)
		}
		defer qf.Close()
		if err := seqio.WriteDataset(rf, qf, ds, 12); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown format %q", *format))
	}
	fmt.Fprintln(os.Stderr, ds.ComputeStats())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dnagen:", err)
	os.Exit(1)
}
