// Command dnasimd is the resident simulation service: an HTTP job server
// that accepts simulation and retrieval jobs, executes them on a
// supervised worker pool, and survives overload, stalls, I/O faults and
// shutdown signals without losing admitted work.
//
//	dnasimd -addr :8080 -data /var/lib/dnasimd
//
// Submit a job and poll it:
//
//	curl -s localhost:8080/v1/jobs -d '{"kind":"simulate","simulate":{"num_refs":100,"ref_len":110,"seed":7,"sub":0.01,"ins":0.005,"del":0.02,"coverage":8}}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/result -o sim.txt
//
// SIGTERM (or SIGINT) drains gracefully: admission stops, in-flight jobs
// finish or checkpoint their progress to the durable journal in -data,
// and the process exits 0. Resubmitting an identical simulation spec
// against the same -data dir resumes from the journal, byte-identically.
//
// With -coordinator the same binary fronts a fleet of worker instances
// instead of simulating locally: simulate jobs are split into cluster-range
// shards, placed by rendezvous hashing, cached by shard fingerprint, and
// merged byte-identically to a single-node run. The API is unchanged, so
// clients need not know whether they talk to a worker or a fleet:
//
//	dnasimd -addr :8081 -data /shared/dnasimd   # worker 1
//	dnasimd -addr :8082 -data /shared/dnasimd   # worker 2
//	dnasimd -addr :8080 -coordinator -nodes 'w1=http://localhost:8081,w2=http://localhost:8082' \
//	        -data-dir /var/lib/dnasimd-coord
//
// With -data-dir the coordinator itself is crash-consistent: every accepted
// job is journaled to a write-ahead ledger before the 202, completed shard
// results spill to durable containers (bounded by -cache-bytes), and a
// restart replays the ledger — re-adopting in-flight jobs under their old
// IDs and Idempotency-Keys — before serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dnastore/internal/fleet"
	"dnastore/internal/obs"
	"dnastore/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dataDir     = flag.String("data", "", "data directory for checkpoint journals (empty disables checkpointing)")
		queueCap    = flag.Int("queue", 64, "admission queue capacity; beyond it submissions are shed with 503 + Retry-After")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		maxAttempts = flag.Int("max-attempts", 3, "supervised execution attempts per job")
		stallAfter  = flag.Duration("stall-after", 30*time.Second, "kill a job attempt after this long without cluster progress (negative disables)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long drain waits for non-checkpointable jobs")
		jobTimeout  = flag.Duration("job-timeout", 0, "default per-job deadline for jobs that set none (0 = unbounded)")
		brkFails    = flag.Int("breaker-failures", 5, "consecutive I/O failures that trip the circuit breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 10*time.Second, "open-breaker cooldown before a half-open probe")
		pprof       = flag.Bool("pprof", false, "mount /debug/pprof/* profiling endpoints (off by default: they expose internals)")

		coordinator   = flag.Bool("coordinator", false, "front a fleet of workers (-nodes) instead of simulating locally")
		nodes         = flag.String("nodes", "", "coordinator: comma-separated name=url worker list")
		shardClusters = flag.Int("shard-clusters", 64, "coordinator: clusters per shard")
		hedgeAfter    = flag.Duration("hedge-after", 0, "coordinator: hedge a straggling shard on the next-ranked node after this long (0 disables)")
		allowPartial  = flag.Bool("allow-partial", false, "coordinator: deliver a partial dataset with explicit erasure shards instead of failing when placements are exhausted")
		maxShardAtt   = flag.Int("max-shard-attempts", 0, "coordinator: placements per shard before it counts as lost (0 = 2x node count)")
		probeInterval = flag.Duration("probe-interval", time.Second, "coordinator: /readyz health-probe cadence (negative disables)")
		cacheEntries  = flag.Int("cache-entries", 256, "coordinator: shard result cache capacity")
		coordDataDir  = flag.String("data-dir", "", "coordinator: data directory for the write-ahead job ledger and shard spill cache (empty disables crash recovery)")
		cacheBytes    = flag.Int64("cache-bytes", 256<<20, "coordinator: byte budget for the durable shard spill cache under -data-dir")

		logOpts = obs.LogFlags(flag.CommandLine)
	)
	flag.Parse()

	logger := log.New(os.Stderr, "dnasimd: ", log.LstdFlags)
	slogger := logOpts.Logger("dnasimd")

	if *coordinator {
		nodeList, err := parseNodes(*nodes)
		if err != nil {
			log.Fatalf("dnasimd: %v", err)
		}
		runCoordinator(*addr, fleet.Config{
			Nodes:            nodeList,
			ShardClusters:    *shardClusters,
			MaxShardAttempts: *maxShardAtt,
			HedgeAfter:       *hedgeAfter,
			AllowPartial:     *allowPartial,
			CacheCapacity:    *cacheEntries,
			DataDir:          *coordDataDir,
			SpillBytes:       *cacheBytes,
			ProbeInterval:    *probeInterval,
			BreakerThreshold: *brkFails,
			BreakerCooldown:  *brkCooldown,
			Logger:           slogger,
		}, logger, *pprof)
		return
	}

	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("dnasimd: data dir: %v", err)
		}
	}
	srv := server.New(server.Config{
		QueueCapacity:     *queueCap,
		Workers:           *workers,
		DataDir:           *dataDir,
		MaxAttempts:       *maxAttempts,
		StallAfter:        *stallAfter,
		DrainGrace:        *drainGrace,
		DefaultJobTimeout: *jobTimeout,
		BreakerThreshold:  *brkFails,
		BreakerCooldown:   *brkCooldown,
		Logf:              logger.Printf,
		Logger:            slogger,
	})

	// The server handles everything (including /metrics); pprof, when
	// enabled, mounts on an outer mux so the server package never links
	// net/http/pprof into embedders that don't want it.
	handler := http.Handler(srv)
	if *pprof {
		outer := http.NewServeMux()
		obs.RegisterPprof(outer)
		outer.Handle("/", srv)
		handler = outer
		slogger.Info("pprof endpoints enabled", "path", "/debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (queue=%d workers=%d data=%q)", *addr, *queueCap, *workers, *dataDir)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining", sig)
		// Drain first — admission stops, /readyz flips, in-flight jobs
		// finish or checkpoint — and only then close the listener, so
		// status and result queries keep working throughout the drain.
		srv.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
		logger.Printf("drained; exiting")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "dnasimd:", err)
			os.Exit(1)
		}
	}
}

// parseNodes parses the -nodes flag: "name=url[,name=url...]".
func parseNodes(s string) ([]fleet.NodeConfig, error) {
	if s == "" {
		return nil, errors.New("coordinator mode needs -nodes name=url[,name=url...]")
	}
	var out []fleet.NodeConfig
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -nodes entry %q, want name=url", part)
		}
		out = append(out, fleet.NodeConfig{Name: name, BaseURL: url})
	}
	return out, nil
}

// runCoordinator serves the fleet coordinator until a shutdown signal,
// then drains: admission stops, in-flight jobs park in their write-ahead
// ledgers (when -data-dir is set), and a restart on the same -data-dir
// re-adopts them — collecting shards that finished on workers in the
// meantime via the spill cache and derived Idempotency-Keys.
func runCoordinator(addr string, cfg fleet.Config, logger *log.Logger, pprof bool) {
	coord, err := fleet.New(cfg)
	if err != nil {
		log.Fatalf("dnasimd: %v", err)
	}
	handler := http.Handler(coord)
	if pprof {
		outer := http.NewServeMux()
		obs.RegisterPprof(outer)
		outer.Handle("/", coord)
		handler = outer
	}
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		names := make([]string, len(cfg.Nodes))
		for i, n := range cfg.Nodes {
			names[i] = n.Name
		}
		logger.Printf("coordinating %d node(s) [%s] on %s (shard=%d clusters, hedge=%s, partial=%v)",
			len(cfg.Nodes), strings.Join(names, " "), addr, cfg.ShardClusters, cfg.HedgeAfter, cfg.AllowPartial)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigCh:
		logger.Printf("%s: draining coordinator", sig)
		// Drain, not Close: park in-flight jobs in their ledgers and fsync
		// them shut, so a restart on the same -data-dir resumes the work.
		// Status and result queries keep answering until the listener stops.
		coord.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("http shutdown: %v", err)
		}
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "dnasimd:", err)
			os.Exit(1)
		}
	}
}
