// Command dnaprofile extracts the paper's data-driven error profile from a
// clustered dataset: aggregate and conditional IDS rates, the substitution
// confusion matrix, long-deletion statistics, the spatial error histogram,
// and the second-order error table (§3.3, Fig 3.6).
//
// Usage:
//
//	dnaprofile -in nanopore.txt [-spatial] [-second-order 10] [-randomize]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/obs"
	"dnastore/internal/profile"
)

func main() {
	var (
		in        = flag.String("in", "", "clusters file (required)")
		spatial   = flag.Bool("spatial", false, "print the per-position error histogram")
		topK      = flag.Int("second-order", 10, "print the top-K second-order errors")
		randomize = flag.Bool("randomize", false, "use randomized edit-script tie-breaks (paper Appendix B)")
		seed      = flag.Uint64("seed", 1, "seed for randomized tie-breaks")
		jsonOut   = flag.String("json", "", "write the full profile as JSON to this path")
		logOpts   = obs.LogFlags(flag.CommandLine)
	)
	flag.Parse()
	logger := logOpts.Logger("dnaprofile")
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dnaprofile: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	ds, err := dataset.Read(f)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	p, err := profile.Profile(ds, profile.Options{RandomizeScripts: *randomize, Seed: *seed})
	if err != nil {
		fail(err)
	}
	logger.Debug("profile extracted", "clusters", len(ds.Clusters),
		"elapsed", time.Since(start).Round(time.Millisecond))

	if *jsonOut != "" {
		// Atomic, checksummed, parity-protected container: a calibration
		// artifact survives torn writes and limited bit rot.
		if err := p.WriteFile(*jsonOut); err != nil {
			fail(err)
		}
	}

	fmt.Println(ds.ComputeStats())
	fmt.Println(p.Summary())
	if ratio := p.HomopolymerErrorRatio(); ratio > 0 {
		fmt.Printf("homopolymer error boost (runs >= 3): %.2fx\n", ratio)
	}
	fmt.Println()

	fmt.Println("Conditional rates P(err | base):")
	per := p.PerBaseRates()
	for b := dna.Base(0); b < dna.NumBases; b++ {
		fmt.Printf("  %s: sub %.4f  ins %.4f  del %.4f\n", b, per[b].Sub, per[b].Ins, per[b].Del)
	}
	fmt.Println()

	fmt.Println("Substitution confusion matrix P(read | sub of ref):")
	conf := p.SubConfusion()
	fmt.Printf("        %6s %6s %6s %6s\n", "A", "C", "G", "T")
	for b := dna.Base(0); b < dna.NumBases; b++ {
		fmt.Printf("  %s ->", b)
		for c := dna.Base(0); c < dna.NumBases; c++ {
			fmt.Printf(" %6.3f", conf[b][c])
		}
		fmt.Println()
	}
	fmt.Println()

	ld := p.LongDeletion()
	fmt.Printf("Long deletions: p=%.4f, mean length %.2f, length weights %v\n\n",
		ld.Prob, ld.MeanLen(), ld.LengthWeights)

	if *topK > 0 {
		fmt.Printf("Top %d second-order errors (share of all errors %.1f%%):\n", *topK, 100*p.SecondOrderShare(*topK))
		for i, s := range p.TopSecondOrder(*topK) {
			e := channel.SecondOrderError{Kind: s.Kind, From: s.From, To: s.To}
			fmt.Printf("  %2d. %-10s ×%d\n", i+1, e.String(), s.Count)
		}
		fmt.Println()
	}

	if *spatial {
		fmt.Println("Spatial error histogram (position: count):")
		for i, c := range p.SpatialHistogram() {
			fmt.Printf("%d,%g\n", i, c)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dnaprofile:", err)
	os.Exit(1)
}
