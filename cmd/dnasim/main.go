// Command dnasim simulates the noisy DNA storage channel: it reads
// reference strands (one per line), perturbs them with a configurable
// channel tier, and writes the resulting clustered dataset.
//
// The channel can be parameterised two ways:
//
//   - directly, with -sub/-ins/-del (+ optional -spatial and -longdel),
//   - as a multi-stage pipeline, with -stages (the channel.ParseStages
//     DSL); pool stages bind over the coverage model,
//   - or data-driven, with -calibrate <dataset>: the full calibration
//     pipeline of the paper fits the chosen -tier from real clusters.
//
// Usage:
//
//	dnasim -refs refs.txt -coverage 6 -sub 0.02 -ins 0.01 -del 0.03 -o sim.txt
//	dnasim -refs refs.txt -stages 'synthesis=0.0118,pcr=30:0.0001:0.02,aging=100:3e-05:0.00133,sequencing=0.0413:terminal-skew' -o sim.txt
//	dnasim -refs refs.txt -calibrate nanopore.txt -tier second-order -o sim.txt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/durable"
	"dnastore/internal/faults"
	"dnastore/internal/obs"
	"dnastore/internal/profile"
)

func main() {
	var (
		refsPath   = flag.String("refs", "", "reference strands file (one per line, required)")
		out        = flag.String("o", "-", "output clusters file (- for stdout)")
		coverage   = flag.Float64("coverage", 6, "fixed coverage, or the mean when -coverage-model is stochastic")
		covModel   = flag.String("coverage-model", "fixed", "coverage model: fixed, negbin, poisson, normal")
		sub        = flag.Float64("sub", 0, "substitution probability per base")
		ins        = flag.Float64("ins", 0, "insertion probability per base")
		del        = flag.Float64("del", 0, "deletion probability per base")
		spatial    = flag.String("spatial", "uniform", "spatial distribution: uniform, a-shape, v-shape, terminal-skew")
		longDel    = flag.Bool("longdel", false, "enable the paper's long-deletion burst model")
		stageSpec  = flag.String("stages", "", "multi-stage channel spec (e.g. synthesis=0.01,pcr=30:0.0001:0.02,aging=100:3e-05:0.00133,sequencing=0.04:terminal-skew); excludes -sub/-ins/-del/-spatial")
		calibrate  = flag.String("calibrate", "", "clusters file to fit the channel from (overrides -sub/-ins/-del)")
		tier       = flag.String("tier", "second-order", "calibrated tier: naive, conditional, skew, second-order, dnasimulator, staged")
		seed       = flag.Uint64("seed", 1, "random seed")
		faultSpec  = flag.String("faults", "", "fault injection spec (e.g. dropout=0.1,truncate=0.3:0.5,contam=0.02,zerocov=10:5)")
		ckptPath   = flag.String("checkpoint", "", "journal completed clusters to this file; rerunning resumes instead of restarting")
		crashAfter = flag.Int("crash-after", 0, "crash drill: kill the process after N checkpoint commits (requires -checkpoint)")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long; the partial dataset is still written (0 = unbounded)")
		logOpts    = obs.LogFlags(flag.CommandLine)
	)
	flag.Parse()
	logger := logOpts.Logger("dnasim")
	if *refsPath == "" {
		fmt.Fprintln(os.Stderr, "dnasim: -refs is required")
		flag.Usage()
		os.Exit(2)
	}

	refs, err := readRefs(*refsPath)
	if err != nil {
		fail(err)
	}

	var ch channel.Channel
	if *calibrate != "" {
		ch, err = calibratedChannel(*calibrate, *tier)
		if err != nil {
			fail(err)
		}
	} else if *stageSpec != "" {
		if *sub != 0 || *ins != 0 || *del != 0 || *spatial != "uniform" {
			fail(errors.New("-stages is mutually exclusive with -sub/-ins/-del/-spatial"))
		}
		list, err := channel.ParseStages(*stageSpec)
		if err != nil {
			fail(err)
		}
		ch = list.Build("staged")
	} else {
		rates := channel.Rates{Sub: *sub, Ins: *ins, Del: *del}
		if err := rates.Validate(); err != nil {
			fail(err)
		}
		m := channel.NewNaive("dnasim", rates)
		if *longDel {
			m.LongDel = channel.PaperLongDeletion()
		}
		if *spatial != "uniform" {
			sp, err := dist.ByName(*spatial)
			if err != nil {
				fail(err)
			}
			m = m.WithSpatial(sp)
		}
		ch = m
	}

	var cov channel.CoverageModel
	switch *covModel {
	case "fixed":
		cov = channel.FixedCoverage(int(*coverage))
	case "negbin":
		cov = channel.NegBinCoverage{Mean: *coverage, Dispersion: 2.5}
	case "poisson":
		cov = channel.PoissonCoverage(*coverage)
	case "normal":
		cov = channel.NormalCoverage{Mean: *coverage, SD: *coverage / 3}
	default:
		fail(fmt.Errorf("unknown coverage model %q", *covModel))
	}
	// A staged channel's pool stages (PCR skew, breakage) rewrite the read
	// count; bind them before faults so injectors stay outermost.
	if pipe, ok := ch.(channel.Pipeline); ok {
		cov = pipe.BindCoverage(cov)
	}

	spec, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fail(err)
	}
	ch, cov = spec.Wrap(ch, cov)

	// SIGINT drains gracefully: the simulator stops between clusters and
	// the partial dataset is still written out. -timeout bounds the run the
	// same way — deadline expiry behaves exactly like an interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stages := obs.NewStageTimer()
	ctx = obs.WithTimer(ctx, stages)

	sim := channel.Simulator{Channel: ch, Coverage: cov}
	var (
		ds     *dataset.Dataset
		simErr error
		ckpt   *channel.Checkpoint
	)
	if *ckptPath != "" {
		ckpt, err = channel.OpenCheckpoint(*ckptPath, "simulated", refs, *seed, sim.Describe())
		if err != nil {
			fail(err)
		}
		if n := ckpt.Completed(); n > 0 {
			fmt.Fprintf(os.Stderr, "dnasim: resuming from %s: %d/%d clusters already journaled\n",
				*ckptPath, n, len(refs))
		}
		if *crashAfter > 0 {
			// Crash drill: die as abruptly as a SIGKILL once N clusters have
			// been durably committed, leaving the checkpoint to prove itself.
			ckpt.OnCommit = func(commits int) {
				if commits >= *crashAfter {
					fmt.Fprintf(os.Stderr, "dnasim: crash drill after %d commits\n", commits)
					os.Exit(137)
				}
			}
		}
		ds, simErr = sim.SimulateCheckpoint(ctx, "simulated", refs, *seed, ckpt)
		ckpt.Close()
	} else {
		if *crashAfter > 0 {
			fail(errors.New("-crash-after requires -checkpoint"))
		}
		ds, simErr = sim.SimulateCtx(ctx, "simulated", refs, *seed)
	}
	if ds == nil {
		fail(simErr)
	}

	// Output commits atomically (temp + fsync + rename), so an interrupted
	// run — including the SIGINT partial-dataset path — never leaves a
	// half-written file where a previous complete one stood.
	if *out == "-" {
		if err := ds.Write(os.Stdout); err != nil {
			fail(err)
		}
	} else if err := durable.WriteFileAtomic(*out, ds.Write); err != nil {
		fail(err)
	}
	if ckpt != nil && simErr == nil {
		// The dataset is durably on disk; the journal has served its purpose.
		if err := os.Remove(*ckptPath); err != nil {
			fmt.Fprintln(os.Stderr, "dnasim: removing checkpoint:", err)
		}
	}
	fmt.Fprintln(os.Stderr, sim.Describe())
	fmt.Fprintln(os.Stderr, ds.ComputeStats())
	if summary := stages.Summary(); summary != "" {
		logger.Debug("stage timings", "stages", summary)
	}
	if simErr != nil {
		var se *channel.SimulationError
		if errors.As(simErr, &se) {
			fmt.Fprintf(os.Stderr, "dnasim: partial dataset: %v\n", se)
		} else {
			fmt.Fprintln(os.Stderr, "dnasim:", simErr)
		}
		if errors.Is(simErr, context.Canceled) {
			os.Exit(130)
		}
		if errors.Is(simErr, context.DeadlineExceeded) {
			// Same convention as timeout(1).
			os.Exit(124)
		}
		os.Exit(1)
	}
}

func readRefs(path string) ([]dna.Strand, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadRefs(f)
}

func calibratedChannel(path, tier string) (channel.Channel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := dataset.Read(f)
	if err != nil {
		return nil, err
	}
	p, err := profile.Profile(ds, profile.Options{})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(os.Stderr, "calibration:", p.Summary())
	switch tier {
	case "naive":
		return p.NaiveModel("naive"), nil
	case "conditional":
		return p.ConditionalModel("conditional"), nil
	case "skew":
		return p.SkewedModel("skew"), nil
	case "second-order":
		return p.SecondOrderModel("second-order", 10), nil
	case "dnasimulator":
		return p.DNASimulatorBaseline("dnasimulator"), nil
	case "staged":
		return p.StagedPipeline("staged", 10), nil
	default:
		return nil, fmt.Errorf("unknown tier %q", tier)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dnasim:", err)
	os.Exit(1)
}
