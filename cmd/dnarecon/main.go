// Command dnarecon runs trace-reconstruction algorithms over a clustered
// dataset and reports per-strand and per-character accuracy, optionally
// with post-reconstruction error-position profiles and the fixed-coverage
// subsampling protocol of §3.2.
//
// Usage:
//
//	dnarecon -in nanopore.txt -algs bma,iterative
//	dnarecon -in nanopore.txt -algs iterative -coverage 5 -min-coverage 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dnastore/internal/dataset"
	"dnastore/internal/metrics"
	"dnastore/internal/obs"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
)

func main() {
	var (
		in          = flag.String("in", "", "clusters file (required)")
		algNames    = flag.String("algs", "bma,iterative", "comma-separated algorithms: majority, bma, bma-oneway, iterative, iterative-sweep, iterative-twoway, divbma")
		coverage    = flag.Int("coverage", 0, "fixed-coverage subsample (0 = use clusters as-is)")
		minCoverage = flag.Int("min-coverage", 10, "minimum cluster coverage for subsampling")
		profiles    = flag.Bool("profiles", false, "print post-reconstruction Hamming/gestalt profiles as CSV")
		census      = flag.Bool("census", false, "print residual error-type census")
		outPath     = flag.String("out", "", "write the first algorithm's reconstructed strands (one per line) to this file")
		seed        = flag.Uint64("seed", 1, "shuffle seed for the subsampling protocol")
		logOpts     = obs.LogFlags(flag.CommandLine)
	)
	flag.Parse()
	logger := logOpts.Logger("dnarecon")
	if *in == "" {
		fmt.Fprintln(os.Stderr, "dnarecon: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	ds, err := dataset.Read(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if *coverage > 0 {
		ds.ShuffleReads(rng.New(*seed))
		ds, err = ds.SubsampleFixed(*coverage, *minCoverage)
		if err != nil {
			fail(err)
		}
	}
	fmt.Println(ds.ComputeStats())

	length := 0
	for _, c := range ds.Clusters {
		if c.Ref.Len() > length {
			length = c.Ref.Len()
		}
	}

	stages := obs.NewStageTimer()
	ctx := obs.WithTimer(context.Background(), stages)
	for algIdx, name := range strings.Split(*algNames, ",") {
		name = strings.TrimSpace(name)
		alg, ok := recon.ByName(name)
		if !ok {
			fail(fmt.Errorf("unknown algorithm %q", name))
		}
		out := recon.ReconstructDatasetCtx(ctx, alg, ds)
		if *outPath != "" && algIdx == 0 {
			f, err := os.Create(*outPath)
			if err != nil {
				fail(err)
			}
			if err := dataset.WriteRefs(f, out); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
		acc := metrics.ComputeAccuracy(ds.References(), out)
		fmt.Printf("%-20s %s\n", alg.Name(), acc)
		if *census {
			c := metrics.CensusErrors(ds.References(), out)
			fmt.Printf("%-20s residual: %s\n", "", c)
		}
		if *profiles {
			h := metrics.HammingProfile(ds.References(), out, length)
			g := metrics.GestaltProfile(ds.References(), out, length)
			fmt.Printf("position,%s hamming,%s gestalt\n", alg.Name(), alg.Name())
			hr, gr := h.Rates(), g.Rates()
			for i := range hr {
				fmt.Printf("%d,%g,%g\n", i, hr[i], gr[i])
			}
		}
	}
	// Per-algorithm wall time and cluster throughput ("recon.<alg> 1.2s
	// (10000 items, 8333.3/s)"), collected by the stage timer on the context.
	if summary := stages.Summary(); summary != "" {
		logger.Debug("stage timings", "stages", summary)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dnarecon:", err)
	os.Exit(1)
}
