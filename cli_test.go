package dnastore

// End-to-end CLI integration: build every command once and drive the full
// tool workflow — generate → profile → simulate (calibrated) → reconstruct
// → re-cluster — over real files, asserting each stage's outputs parse and
// the reported numbers are sane.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/faults"
	"dnastore/internal/profile"
	"dnastore/internal/rng"
	"dnastore/internal/store"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles the command binaries once per test process.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "dnastore-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"dnagen", "dnaprofile", "dnasim", "dnarecon", "dnacluster", "dnabench", "dnastore"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				cliErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, dir, tool string, args ...string) (stdout string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, ee.Stderr)
		}
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	nanopore := filepath.Join(work, "nanopore.txt")
	refs := filepath.Join(work, "refs.txt")
	sim := filepath.Join(work, "sim.txt")
	profJSON := filepath.Join(work, "profile.json")

	// 1. Generate a small wetlab dataset.
	runCLI(t, bin, "dnagen", "-clusters", "150", "-seed", "5", "-o", nanopore)
	f, err := os.Open(nanopore)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClusters() != 150 {
		t.Fatalf("dnagen produced %d clusters", ds.NumClusters())
	}

	// 2. Profile it, saving the calibration as JSON.
	out := runCLI(t, bin, "dnaprofile", "-in", nanopore, "-json", profJSON)
	if !strings.Contains(out, "aggregate") || !strings.Contains(out, "Top 10 second-order errors") {
		t.Errorf("dnaprofile output missing sections:\n%s", out)
	}
	p, legacy, err := profile.ReadFile(profJSON)
	if err != nil {
		t.Fatalf("saved profile unreadable: %v", err)
	}
	if legacy {
		t.Error("dnaprofile wrote a legacy (uncontainered) profile")
	}
	if p.AggregateRate() < 0.04 || p.AggregateRate() > 0.09 {
		t.Errorf("saved profile aggregate = %v", p.AggregateRate())
	}

	// 3. Extract references, simulate with the calibrated second-order tier.
	if err := os.WriteFile(refs, []byte(refsText(ds)), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnasim", "-refs", refs, "-calibrate", nanopore, "-tier", "second-order",
		"-coverage", "6", "-seed", "9", "-o", sim)
	sf, err := os.Open(sim)
	if err != nil {
		t.Fatal(err)
	}
	simDS, err := dataset.Read(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if simDS.NumClusters() != 150 || simDS.MeanCoverage() != 6 {
		t.Fatalf("dnasim produced %d clusters at coverage %v", simDS.NumClusters(), simDS.MeanCoverage())
	}

	// 4. Reconstruct both datasets; per-strand accuracy must be printed.
	recOut := runCLI(t, bin, "dnarecon", "-in", sim, "-algs", "iterative,bma", "-census")
	if !strings.Contains(recOut, "Iterative") || !strings.Contains(recOut, "per-strand") {
		t.Errorf("dnarecon output:\n%s", recOut)
	}
	if !strings.Contains(recOut, "residual") {
		t.Errorf("dnarecon census missing:\n%s", recOut)
	}

	// 5. Re-cluster the simulated dataset and verify purity is reported.
	reOut := runCLI(t, bin, "dnacluster", "-in", sim, "-dataset", "-o", filepath.Join(work, "re.txt"))
	_ = reOut // purity goes to stderr; the output dataset must parse
	rf, err := os.Open(filepath.Join(work, "re.txt"))
	if err != nil {
		t.Fatal(err)
	}
	reDS, err := dataset.Read(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if reDS.NumClusters() != 150 {
		t.Fatalf("dnacluster produced %d clusters", reDS.NumClusters())
	}
	if reDS.NumReads() < simDS.NumReads()*8/10 {
		t.Errorf("re-clustering kept only %d of %d reads", reDS.NumReads(), simDS.NumReads())
	}

	// 6. dnabench runs a single non-workbench experiment quickly.
	benchOut := runCLI(t, bin, "dnabench", "-exp", "table1.1")
	if !strings.Contains(benchOut, "Nanopore") {
		t.Errorf("dnabench table1.1 output:\n%s", benchOut)
	}
}

func TestCLIStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	pool := filepath.Join(work, "pool.json")
	src := filepath.Join(work, "doc.txt")
	dst := filepath.Join(work, "out.txt")
	payload := []byte(strings.Repeat("archival payload line\n", 8))
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnastore", "put", "-pool", pool, "-key", "doc", "-file", src)
	lsOut := runCLI(t, bin, "dnastore", "ls", "-pool", pool)
	if !strings.Contains(lsOut, "doc") {
		t.Fatalf("ls output: %q", lsOut)
	}
	runCLI(t, bin, "dnastore", "get", "-pool", pool, "-key", "doc", "-o", dst, "-error", "0.02", "-coverage", "14")
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("dnastore round trip corrupted the payload")
	}
}

// TestCLIGetFaultInjection drives the resilient read path end to end: a
// recoverable stochastic fault clears via retry with escalated coverage,
// and an unrecoverable dead region exits non-zero after printing an
// erasure report that names the lost strands.
func TestCLIGetFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	pool := filepath.Join(work, "pool.json")
	src := filepath.Join(work, "doc.txt")
	dst := filepath.Join(work, "out.txt")
	payload := []byte(strings.Repeat("archival payload line\n", 8))
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnastore", "put", "-pool", pool, "-key", "doc", "-file", src)

	// Cluster dropout at 50%: most single passes lose too many strands,
	// but each retry re-rolls the dropout under a fresh derived seed.
	out := runCLI(t, bin, "dnastore", "get", "-pool", pool, "-key", "doc", "-o", dst,
		"-error", "0.01", "-coverage", "10", "-faults", "dropout=0.5", "-retries", "9", "-seed", "3")
	_ = out
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("faulted round trip corrupted the payload")
	}

	// A dead region wider than the group parity can never be recovered:
	// the command must exit non-zero and print the erasure report.
	cmd := exec.Command(filepath.Join(bin, "dnastore"), "get", "-pool", pool, "-key", "doc",
		"-o", dst, "-error", "0.01", "-coverage", "10", "-faults", "zerocov=0:8", "-retries", "1")
	outBytes, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("unrecoverable get exited zero")
	}
	stderr := string(outBytes)
	if !strings.Contains(stderr, "erasure report") {
		t.Errorf("stderr missing erasure report:\n%s", stderr)
	}
	if !strings.Contains(stderr, "unrecovered strands") {
		t.Errorf("stderr does not name unrecovered strands:\n%s", stderr)
	}
}

func TestCLIFastqFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	base := filepath.Join(t.TempDir(), "gen")
	runCLI(t, bin, "dnagen", "-clusters", "20", "-format", "fastq", "-o", base)
	fasta, err := os.ReadFile(base + ".fasta")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(fasta), ">ref-0") {
		t.Errorf("FASTA output malformed: %q", string(fasta[:40]))
	}
	fastq, err := os.ReadFile(base + ".fastq")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(fastq), "@cluster-0/read-0") {
		t.Errorf("FASTQ output malformed: %q", string(fastq[:40]))
	}
}

func refsText(ds *dataset.Dataset) string {
	var sb strings.Builder
	for _, ref := range ds.References() {
		sb.WriteString(string(ref))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestCLICheckpointCrashDrill kills dnasim mid-run (the -crash-after drill
// exits like a SIGKILL after N durable commits), tears the checkpoint's
// tail the way a crash tears a file, then reruns and demands the resumed
// output be byte-identical to an uninterrupted run.
func TestCLICheckpointCrashDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	refs := filepath.Join(work, "refs.txt")
	golden := filepath.Join(work, "golden.txt")
	out := filepath.Join(work, "out.txt")
	ckpt := filepath.Join(work, "run.ckpt")

	var sb strings.Builder
	for _, ref := range channel.RandomReferences(60, 80, 17) {
		sb.WriteString(string(ref))
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(refs, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	simArgs := []string{"-refs", refs, "-coverage", "5", "-sub", "0.02", "-del", "0.01", "-seed", "9"}

	runCLI(t, bin, "dnasim", append(simArgs, "-o", golden)...)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	// Crash after 20 committed clusters.
	crash := exec.Command(filepath.Join(bin, "dnasim"),
		append(simArgs, "-o", out, "-checkpoint", ckpt, "-crash-after", "20")...)
	crashOut, err := crash.CombinedOutput()
	if err == nil {
		t.Fatalf("crash drill exited zero:\n%s", crashOut)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("crashed run left an output file")
	}

	// A real crash can also tear the frame being appended: keep the first
	// half (header + committed clusters) and cut somewhere in the tail.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	keep := len(data) / 2
	torn := append(append([]byte(nil), data[:keep]...), faults.TornWrite(data[keep:], rng.New(3))...)
	if err := os.WriteFile(ckpt, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: must report the resume, finish, and remove the checkpoint.
	resume := exec.Command(filepath.Join(bin, "dnasim"), append(simArgs, "-o", out, "-checkpoint", ckpt)...)
	resumeOut, err := resume.CombinedOutput()
	if err != nil {
		t.Fatalf("resume failed: %v\n%s", err, resumeOut)
	}
	if !strings.Contains(string(resumeOut), "resuming") {
		t.Errorf("resume did not report journaled progress:\n%s", resumeOut)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed dataset is not byte-identical to the uninterrupted run")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Error("completed run left its checkpoint behind")
	}

	// Resuming against different parameters must be refused.
	wrong := exec.Command(filepath.Join(bin, "dnasim"),
		append(simArgs, "-o", out, "-checkpoint", ckpt, "-crash-after", "20")...)
	if wrongOut, err := wrong.CombinedOutput(); err == nil {
		_ = wrongOut
	}
	other := exec.Command(filepath.Join(bin, "dnasim"),
		"-refs", refs, "-coverage", "5", "-sub", "0.02", "-del", "0.01", "-seed", "10",
		"-o", out, "-checkpoint", ckpt)
	if mixOut, err := other.CombinedOutput(); err == nil {
		t.Errorf("checkpoint from seed 9 accepted by seed 10 run:\n%s", mixOut)
	}
}

// TestCLIScrub drives scrub/repair end to end: a clean pool scrubs green,
// injected bit rot is detected and repaired in place, torn writes are
// reported as truncation, and legacy JSON pools load with a warning.
func TestCLIScrub(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	pool := filepath.Join(work, "pool.dnac")
	src := filepath.Join(work, "doc.txt")
	dst := filepath.Join(work, "out.txt")
	payload := []byte(strings.Repeat("scrubbed payload line\n", 8))
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnastore", "put", "-pool", pool, "-key", "doc", "-file", src)

	// Clean scrub exits zero and reports healthy checksums.
	out := runCLI(t, bin, "dnastore", "scrub", work)
	if !strings.Contains(out, "all checksums ok") {
		t.Errorf("clean scrub output:\n%s", out)
	}

	// Inject bit rot inside the frame body, within the parity budget.
	data, err := os.ReadFile(pool)
	if err != nil {
		t.Fatal(err)
	}
	bodyStart := 12 + 2 + len("pool.json") + 8
	rotted := faults.BitRotRange(data, bodyStart, len(data)-20, 6, rng.New(21))
	if err := os.WriteFile(pool, rotted, 0o644); err != nil {
		t.Fatal(err)
	}

	// Detection: scrub must see every injected fault and exit non-zero.
	detect := exec.Command(filepath.Join(bin, "dnastore"), "scrub", pool)
	detectOut, err := detect.CombinedOutput()
	if err == nil {
		t.Fatalf("scrub of a rotted pool exited zero:\n%s", detectOut)
	}
	if !strings.Contains(string(detectOut), "repairable") {
		t.Errorf("scrub did not flag repairable damage:\n%s", detectOut)
	}

	// Repair restores the container; a follow-up scrub and get both pass.
	repairOut := runCLI(t, bin, "dnastore", "scrub", "-repair", pool)
	if !strings.Contains(repairOut, "repaired") {
		t.Errorf("repair output:\n%s", repairOut)
	}
	if out := runCLI(t, bin, "dnastore", "scrub", pool); !strings.Contains(out, "all checksums ok") {
		t.Errorf("post-repair scrub:\n%s", out)
	}
	runCLI(t, bin, "dnastore", "get", "-pool", pool, "-key", "doc", "-o", dst,
		"-error", "0.01", "-coverage", "12")
	if got, _ := os.ReadFile(dst); !bytes.Equal(got, payload) {
		t.Error("payload corrupted after repair")
	}

	// A torn write is reported as truncation and is not repairable.
	clean, err := os.ReadFile(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pool, clean[:len(clean)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	tornCmd := exec.Command(filepath.Join(bin, "dnastore"), "scrub", pool)
	tornOut, err := tornCmd.CombinedOutput()
	if err == nil {
		t.Fatalf("scrub of a torn pool exited zero:\n%s", tornOut)
	}
	if !strings.Contains(string(tornOut), "TRUNCATED") {
		t.Errorf("torn pool not reported as truncated:\n%s", tornOut)
	}
	if err := os.WriteFile(pool, clean, 0o644); err != nil {
		t.Fatal(err)
	}

	// Legacy pools: scrub names them, ls warns but still works.
	legacy := filepath.Join(work, "legacy.json")
	p, _, err := store.LoadFile(pool)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(lf); err != nil {
		t.Fatal(err)
	}
	lf.Close()
	if out := runCLI(t, bin, "dnastore", "scrub", legacy); !strings.Contains(out, "legacy format") {
		t.Errorf("legacy scrub output:\n%s", out)
	}
	lsCmd := exec.Command(filepath.Join(bin, "dnastore"), "ls", "-pool", legacy)
	lsOut, err := lsCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ls on legacy pool: %v\n%s", err, lsOut)
	}
	if !strings.Contains(string(lsOut), "legacy JSON pool") {
		t.Errorf("ls did not warn about the legacy pool:\n%s", lsOut)
	}
	if !strings.Contains(string(lsOut), "doc") {
		t.Errorf("legacy pool did not list its key:\n%s", lsOut)
	}
}

// runCLIFail runs a tool expecting a non-zero exit; it returns the exit
// code and stderr.
func runCLIFail(t *testing.T, dir, tool string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded", tool, args)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return ee.ExitCode(), stderr.String()
}

// TestCLITimeout: -timeout bounds both long-running commands. An already
// expired deadline is the deterministic worst case: dnasim must still
// write its (empty) partial dataset and exit 124, and dnastore get must
// report a timeout — told to stop — rather than data loss.
func TestCLITimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI timeout drill builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()

	refs := filepath.Join(work, "refs.txt")
	if err := os.WriteFile(refs, []byte(strings.Repeat("ACGTACGTACGTACGTACGTACGTACGTACGT\n", 50)), 0o644); err != nil {
		t.Fatal(err)
	}
	simOut := filepath.Join(work, "sim.txt")
	code, stderr := runCLIFail(t, bin, "dnasim", "-refs", refs, "-coverage", "4", "-sub", "0.01",
		"-timeout", "1ns", "-o", simOut)
	if code != 124 {
		t.Errorf("dnasim timeout exit = %d, want 124\nstderr: %s", code, stderr)
	}
	if _, err := os.Stat(simOut); err != nil {
		t.Errorf("timed-out dnasim did not write the partial dataset: %v", err)
	}

	pool := filepath.Join(work, "pool.json")
	payload := filepath.Join(work, "payload.bin")
	if err := os.WriteFile(payload, []byte("timeout drill payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnastore", "put", "-pool", pool, "-key", "k", "-file", payload)
	code, stderr = runCLIFail(t, bin, "dnastore", "get", "-pool", pool, "-key", "k",
		"-o", filepath.Join(work, "out.bin"), "-timeout", "1ns")
	if code != 1 {
		t.Errorf("dnastore get timeout exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "timed out") {
		t.Errorf("dnastore get timeout not reported as such:\nstderr: %s", stderr)
	}
}
