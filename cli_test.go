package dnastore

// End-to-end CLI integration: build every command once and drive the full
// tool workflow — generate → profile → simulate (calibrated) → reconstruct
// → re-cluster — over real files, asserting each stage's outputs parse and
// the reported numbers are sane.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dnastore/internal/dataset"
	"dnastore/internal/profile"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLIs compiles the command binaries once per test process.
func buildCLIs(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "dnastore-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"dnagen", "dnaprofile", "dnasim", "dnarecon", "dnacluster", "dnabench", "dnastore"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				cliErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, dir, tool string, args ...string) (stdout string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("%s %v: %v\nstderr: %s", tool, args, err, ee.Stderr)
		}
		t.Fatalf("%s %v: %v", tool, args, err)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	nanopore := filepath.Join(work, "nanopore.txt")
	refs := filepath.Join(work, "refs.txt")
	sim := filepath.Join(work, "sim.txt")
	profJSON := filepath.Join(work, "profile.json")

	// 1. Generate a small wetlab dataset.
	runCLI(t, bin, "dnagen", "-clusters", "150", "-seed", "5", "-o", nanopore)
	f, err := os.Open(nanopore)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClusters() != 150 {
		t.Fatalf("dnagen produced %d clusters", ds.NumClusters())
	}

	// 2. Profile it, saving the calibration as JSON.
	out := runCLI(t, bin, "dnaprofile", "-in", nanopore, "-json", profJSON)
	if !strings.Contains(out, "aggregate") || !strings.Contains(out, "Top 10 second-order errors") {
		t.Errorf("dnaprofile output missing sections:\n%s", out)
	}
	pf, err := os.Open(profJSON)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.ReadJSON(pf)
	pf.Close()
	if err != nil {
		t.Fatalf("saved profile unreadable: %v", err)
	}
	if p.AggregateRate() < 0.04 || p.AggregateRate() > 0.09 {
		t.Errorf("saved profile aggregate = %v", p.AggregateRate())
	}

	// 3. Extract references, simulate with the calibrated second-order tier.
	if err := os.WriteFile(refs, []byte(refsText(ds)), 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnasim", "-refs", refs, "-calibrate", nanopore, "-tier", "second-order",
		"-coverage", "6", "-seed", "9", "-o", sim)
	sf, err := os.Open(sim)
	if err != nil {
		t.Fatal(err)
	}
	simDS, err := dataset.Read(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if simDS.NumClusters() != 150 || simDS.MeanCoverage() != 6 {
		t.Fatalf("dnasim produced %d clusters at coverage %v", simDS.NumClusters(), simDS.MeanCoverage())
	}

	// 4. Reconstruct both datasets; per-strand accuracy must be printed.
	recOut := runCLI(t, bin, "dnarecon", "-in", sim, "-algs", "iterative,bma", "-census")
	if !strings.Contains(recOut, "Iterative") || !strings.Contains(recOut, "per-strand") {
		t.Errorf("dnarecon output:\n%s", recOut)
	}
	if !strings.Contains(recOut, "residual") {
		t.Errorf("dnarecon census missing:\n%s", recOut)
	}

	// 5. Re-cluster the simulated dataset and verify purity is reported.
	reOut := runCLI(t, bin, "dnacluster", "-in", sim, "-dataset", "-o", filepath.Join(work, "re.txt"))
	_ = reOut // purity goes to stderr; the output dataset must parse
	rf, err := os.Open(filepath.Join(work, "re.txt"))
	if err != nil {
		t.Fatal(err)
	}
	reDS, err := dataset.Read(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if reDS.NumClusters() != 150 {
		t.Fatalf("dnacluster produced %d clusters", reDS.NumClusters())
	}
	if reDS.NumReads() < simDS.NumReads()*8/10 {
		t.Errorf("re-clustering kept only %d of %d reads", reDS.NumReads(), simDS.NumReads())
	}

	// 6. dnabench runs a single non-workbench experiment quickly.
	benchOut := runCLI(t, bin, "dnabench", "-exp", "table1.1")
	if !strings.Contains(benchOut, "Nanopore") {
		t.Errorf("dnabench table1.1 output:\n%s", benchOut)
	}
}

func TestCLIStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	pool := filepath.Join(work, "pool.json")
	src := filepath.Join(work, "doc.txt")
	dst := filepath.Join(work, "out.txt")
	payload := []byte(strings.Repeat("archival payload line\n", 8))
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnastore", "put", "-pool", pool, "-key", "doc", "-file", src)
	lsOut := runCLI(t, bin, "dnastore", "ls", "-pool", pool)
	if !strings.Contains(lsOut, "doc") {
		t.Fatalf("ls output: %q", lsOut)
	}
	runCLI(t, bin, "dnastore", "get", "-pool", pool, "-key", "doc", "-o", dst, "-error", "0.02", "-coverage", "14")
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("dnastore round trip corrupted the payload")
	}
}

// TestCLIGetFaultInjection drives the resilient read path end to end: a
// recoverable stochastic fault clears via retry with escalated coverage,
// and an unrecoverable dead region exits non-zero after printing an
// erasure report that names the lost strands.
func TestCLIGetFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	work := t.TempDir()
	pool := filepath.Join(work, "pool.json")
	src := filepath.Join(work, "doc.txt")
	dst := filepath.Join(work, "out.txt")
	payload := []byte(strings.Repeat("archival payload line\n", 8))
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	runCLI(t, bin, "dnastore", "put", "-pool", pool, "-key", "doc", "-file", src)

	// Cluster dropout at 50%: most single passes lose too many strands,
	// but each retry re-rolls the dropout under a fresh derived seed.
	out := runCLI(t, bin, "dnastore", "get", "-pool", pool, "-key", "doc", "-o", dst,
		"-error", "0.01", "-coverage", "10", "-faults", "dropout=0.5", "-retries", "9", "-seed", "3")
	_ = out
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Error("faulted round trip corrupted the payload")
	}

	// A dead region wider than the group parity can never be recovered:
	// the command must exit non-zero and print the erasure report.
	cmd := exec.Command(filepath.Join(bin, "dnastore"), "get", "-pool", pool, "-key", "doc",
		"-o", dst, "-error", "0.01", "-coverage", "10", "-faults", "zerocov=0:8", "-retries", "1")
	outBytes, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("unrecoverable get exited zero")
	}
	stderr := string(outBytes)
	if !strings.Contains(stderr, "erasure report") {
		t.Errorf("stderr missing erasure report:\n%s", stderr)
	}
	if !strings.Contains(stderr, "unrecovered strands") {
		t.Errorf("stderr does not name unrecovered strands:\n%s", stderr)
	}
}

func TestCLIFastqFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI workflow builds binaries")
	}
	bin := buildCLIs(t)
	base := filepath.Join(t.TempDir(), "gen")
	runCLI(t, bin, "dnagen", "-clusters", "20", "-format", "fastq", "-o", base)
	fasta, err := os.ReadFile(base + ".fasta")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(fasta), ">ref-0") {
		t.Errorf("FASTA output malformed: %q", string(fasta[:40]))
	}
	fastq, err := os.ReadFile(base + ".fastq")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(fastq), "@cluster-0/read-0") {
		t.Errorf("FASTQ output malformed: %q", string(fastq[:40]))
	}
}

func refsText(ds *dataset.Dataset) string {
	var sb strings.Builder
	for _, ref := range ds.References() {
		sb.WriteString(string(ref))
		sb.WriteByte('\n')
	}
	return sb.String()
}
