package dnastore

// One benchmark per paper table and figure (see DESIGN.md §4). Each
// benchmark regenerates its artifact end-to-end — dataset generation,
// calibration where needed, reconstruction, metrics — at a reduced scale
// chosen so a full `go test -bench=.` run finishes in minutes while
// preserving every qualitative result. cmd/dnabench runs the same
// experiments at the paper's full scale.

import (
	"sync"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/experiments"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
	"dnastore/internal/wetlab"
)

// benchRNG returns a fresh deterministic generator for micro-benchmarks.
func benchRNG() *rng.RNG { return rng.New(99) }

// benchScale keeps benchmark iterations affordable.
var benchScale = experiments.Scale{Clusters: 200, Seed: 1}

var (
	benchWBOnce sync.Once
	benchWB     *experiments.Workbench
)

// workbench builds the shared wetlab+calibration state once per process.
func workbench(b *testing.B) *experiments.Workbench {
	b.Helper()
	benchWBOnce.Do(func() {
		wb, err := experiments.NewWorkbench(benchScale)
		if err != nil {
			panic(err)
		}
		benchWB = wb
	})
	return benchWB
}

func runEntry(b *testing.B, id string) {
	wb := workbench(b)
	entry, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := entry.Run(wb, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkTable11(b *testing.B)  { runEntry(b, "table1.1") }
func BenchmarkTable21(b *testing.B)  { runEntry(b, "table2.1") }
func BenchmarkTable22(b *testing.B)  { runEntry(b, "table2.2") }
func BenchmarkTable31(b *testing.B)  { runEntry(b, "table3.1") }
func BenchmarkTable32(b *testing.B)  { runEntry(b, "table3.2") }
func BenchmarkFigure32(b *testing.B) { runEntry(b, "fig3.2") }
func BenchmarkFigure33(b *testing.B) { runEntry(b, "fig3.3") }
func BenchmarkFigure34(b *testing.B) { runEntry(b, "fig3.4") }
func BenchmarkFigure35(b *testing.B) { runEntry(b, "fig3.5") }
func BenchmarkFigure36(b *testing.B) { runEntry(b, "fig3.6") }
func BenchmarkFigure37(b *testing.B) { runEntry(b, "fig3.7") }
func BenchmarkFigure38(b *testing.B) { runEntry(b, "fig3.8") }
func BenchmarkFigure39(b *testing.B) { runEntry(b, "fig3.9") }
func BenchmarkFigure310(b *testing.B) {
	runEntry(b, "fig3.10")
}
func BenchmarkAppendixC(b *testing.B)           { runEntry(b, "figC") }
func BenchmarkExtTwoWayIterative(b *testing.B)  { runEntry(b, "ext4.3") }
func BenchmarkExtStatDistance(b *testing.B)     { runEntry(b, "ext.metrics") }
func BenchmarkExtAging(b *testing.B)            { runEntry(b, "ext.aging") }
func BenchmarkExtClustering(b *testing.B)       { runEntry(b, "ext.clustering") }
func BenchmarkExtErrorScale(b *testing.B)       { runEntry(b, "ext.errorscale") }
func BenchmarkExtWeighted(b *testing.B)         { runEntry(b, "ext.weighted") }
func BenchmarkExtHoldout(b *testing.B)          { runEntry(b, "ext.holdout") }
func BenchmarkExtChimera(b *testing.B)          { runEntry(b, "ext.chimera") }
func BenchmarkAblationStages(b *testing.B)      { runEntry(b, "abl.stages") }
func BenchmarkAblationWindow(b *testing.B)      { runEntry(b, "abl.window") }
func BenchmarkAblationSplice(b *testing.B)      { runEntry(b, "abl.splice") }
func BenchmarkAblationScript(b *testing.B)      { runEntry(b, "abl.script") }
func BenchmarkAblationCensus(b *testing.B)      { runEntry(b, "abl.census") }
func BenchmarkAblationAffine(b *testing.B)      { runEntry(b, "abl.affine") }
func BenchmarkAblationHomopolymer(b *testing.B) { runEntry(b, "abl.homopolymer") }
func BenchmarkAblationCoverage(b *testing.B)    { runEntry(b, "abl.coverage") }
func BenchmarkAblationAlgorithms(b *testing.B)  { runEntry(b, "abl.algorithms") }

// Micro-benchmarks for the hot paths behind the experiments.

func BenchmarkWetlabTransmit(b *testing.B) {
	ch := wetlab.GroundTruthChannel(0.059)
	refs := channel.RandomReferences(1, 110, 1)
	r := benchRNG()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Transmit(refs[0], r)
	}
}

func BenchmarkProfile1kReads(b *testing.B) {
	cfg := wetlab.DefaultConfig()
	cfg.NumClusters = 40 // ≈1k reads
	ds := wetlab.MustGenerate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Profile(ds, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructIterative(b *testing.B) {
	wb := workbench(b)
	ds, err := wb.FixedCoverage(6, 10)
	if err != nil {
		b.Fatal(err)
	}
	alg := recon.NewIterative()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recon.ReconstructDataset(alg, ds)
	}
}

func BenchmarkReconstructBMA(b *testing.B) {
	wb := workbench(b)
	ds, err := wb.FixedCoverage(6, 10)
	if err != nil {
		b.Fatal(err)
	}
	alg := recon.NewBMA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recon.ReconstructDataset(alg, ds)
	}
}
