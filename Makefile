GO ?= go

.PHONY: build test verify verify-race chaos-smoke fuzz-smoke bench bench-check loadcheck fleetcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification plus the race, chaos and fuzz gates — the target CI
# runs.
verify: build test verify-race chaos-smoke fuzz-smoke

# Race-detector pass over the concurrent packages: the simulator worker
# pool and checkpointing (internal/channel), the adaptive retrieve path
# (internal/store), the journal (internal/durable), and the metrics
# registry / stage timer (internal/obs).
verify-race:
	$(GO) vet ./...
	$(GO) test -race ./internal/channel/... ./internal/store/... ./internal/durable/... ./internal/obs/...

# Chaos smoke: the dnasimd job-server drills — injected panics, stalls,
# overload shedding, breaker trips and the drain/resume cycle — plus the
# client/proxy drills (resets, slow-loris, blackholes, corrupted bodies,
# end-to-end conservation) and the fleet coordinator drills, all under the
# race detector.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/server/... ./internal/client/... ./internal/chaosnet/... ./internal/fleet/...

# Short fuzz pass over every parser that consumes on-disk bytes: the
# durable container reader, the pool loader, the FASTA/FASTQ parsers, and
# the fault-injection spec DSL.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadContainer -fuzztime=10s ./internal/durable/
	$(GO) test -run='^$$' -fuzz=FuzzLoadPool -fuzztime=10s ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzReadFASTA -fuzztime=10s ./internal/seqio/
	$(GO) test -run='^$$' -fuzz=FuzzReadFASTQ -fuzztime=10s ./internal/seqio/
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=10s ./internal/faults/

# Benchmarks: one pass over the Go benchmarks (smoke, 1 iteration each)
# plus the machine-readable simulate hot-path measurement CI archives as an
# artifact.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/dnabench -json BENCH_sim.json

# Regression gate: re-measure the simulate hot paths and fail on >15%
# ns/op regression against the committed BENCH_sim.json baseline. The
# comparison report lands in BENCH_compare.txt (archived by CI). After an
# intentional perf change, refresh the baseline with `make bench` on the
# reference machine and commit it.
bench-check:
	$(GO) run ./cmd/dnabench -compare BENCH_sim.json -compare-report BENCH_compare.txt

# Capacity & conservation gate: drive the dnasimd server through the
# chaosnet fault proxy at a fixed open-loop arrival rate, fail hard on any
# lost / duplicated / corrupted job, refresh BENCH_serve.json, and fail on
# capacity regression against the committed baseline (dnaload reads the
# baseline before rewriting the file, so one run both measures and gates).
# After an intentional capacity change, re-run and commit the refreshed
# BENCH_serve.json.
loadcheck:
	$(GO) run ./cmd/dnaload -rps 60 -jobs 90 -chaos -out BENCH_serve.json -compare BENCH_serve.json

# Multi-node drill: a coordinator over three worker dnasimd servers with a
# forced node death mid-shard (plus the hedge and journal-handoff drills),
# under the race detector. Asserts the merged dataset is byte-identical to
# a single-node run, the shard ledger balances, re-placed shards resume
# orphan journals, and a duplicate spec is served from the result cache.
fleetcheck:
	$(GO) test -race -count=1 -run 'TestFleetDrill|TestFleetShardHandoffResume' ./internal/fleet/
