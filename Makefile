GO ?= go

.PHONY: build test verify verify-race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification: everything must build and every test must pass.
verify: build test

# Race-detector pass over the concurrent packages: the simulator worker
# pool (internal/channel) and the adaptive retrieve path (internal/store).
verify-race:
	$(GO) vet ./...
	$(GO) test -race ./internal/channel/... ./internal/store/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
