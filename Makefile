GO ?= go

.PHONY: build test verify verify-race chaos-smoke fuzz-smoke bench bench-check loadcheck fleetcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification plus the race, chaos and fuzz gates — the target CI
# runs.
verify: build test verify-race chaos-smoke fuzz-smoke

# Race-detector pass over the concurrent packages: the simulator worker
# pool and checkpointing (internal/channel), the adaptive retrieve path
# (internal/store), the journal (internal/durable), and the metrics
# registry / stage timer (internal/obs).
verify-race:
	$(GO) vet ./...
	$(GO) test -race ./internal/channel/... ./internal/store/... ./internal/durable/... ./internal/obs/...

# Chaos smoke: the dnasimd job-server drills — injected panics, stalls,
# overload shedding, breaker trips and the drain/resume cycle — plus the
# client/proxy drills (resets, slow-loris, blackholes, corrupted bodies,
# end-to-end conservation) and the fleet coordinator drills, all under the
# race detector.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/server/... ./internal/client/... ./internal/chaosnet/... ./internal/fleet/...

# Short fuzz pass over every parser that consumes on-disk bytes: the
# durable container reader, the pool loader, the FASTA/FASTQ parsers, the
# fault-injection spec DSL, and the channel stage-pipeline DSL.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadContainer -fuzztime=10s ./internal/durable/
	$(GO) test -run='^$$' -fuzz=FuzzLoadPool -fuzztime=10s ./internal/store/
	$(GO) test -run='^$$' -fuzz=FuzzReadFASTA -fuzztime=10s ./internal/seqio/
	$(GO) test -run='^$$' -fuzz=FuzzReadFASTQ -fuzztime=10s ./internal/seqio/
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=10s ./internal/faults/
	$(GO) test -run='^$$' -fuzz=FuzzParseStages -fuzztime=10s ./internal/channel/

# Benchmarks: one pass over the Go benchmarks (smoke, 1 iteration each)
# plus the machine-readable simulate hot-path measurement CI archives as an
# artifact.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/dnabench -json BENCH_sim.json

# Regression gate: re-measure the simulate hot paths and fail on >15%
# ns/op regression against the committed BENCH_sim.json baseline, or on
# allocs/op growth (absolute growth past an 8-alloc grace when the
# baseline is zero-alloc — a fraction of zero can't gate). The
# channel.transmit/* workloads additionally hard-fail the measurement
# itself if the default transmit path allocates at all: allocs/op on the
# packed AppendTransmit kernels must be exactly 0. The comparison report
# lands in BENCH_compare.txt (archived by CI even when the gate fails).
# After an intentional perf change, refresh the baseline with `make
# bench` on the reference machine and commit it.
bench-check:
	$(GO) run ./cmd/dnabench -compare BENCH_sim.json -compare-report BENCH_compare.txt

# Capacity & conservation gate, two entries in BENCH_serve.json: the
# single dnasimd server driven through the chaosnet fault proxy, and a
# 3-node fleet coordinator (crash-consistent ledger + spill on a temp
# dir). Both fail hard on any lost / duplicated / corrupted job, refresh
# their entry, and fail on capacity regression against the committed
# baseline (dnaload reads the baseline before rewriting the file, so one
# run both measures and gates). After an intentional capacity change,
# re-run and commit the refreshed BENCH_serve.json.
loadcheck:
	$(GO) run ./cmd/dnaload -rps 60 -jobs 90 -chaos -out BENCH_serve.json -compare BENCH_serve.json
	$(GO) run ./cmd/dnaload -rps 40 -jobs 60 -fleet-nodes 3 -out BENCH_serve.json -compare BENCH_serve.json

# Multi-node drills under the race detector: a coordinator over worker
# dnasimd servers with a forced node death mid-shard (plus the hedge and
# journal-handoff drills), the same node-death drill on a staged-pipeline
# spec (pool-stage coverage draws must survive sharding byte-identically
# and hit the shard cache on resubmission), and the kill-restart drill —
# the real dnasimd coordinator binary SIGKILLed mid-job, restarted on the
# same -data-dir, and required to finish the job byte-identically under
# its old ID with pre-kill shards served from the durable spill, every
# ledger and spill file scrubbing clean afterwards.
fleetcheck:
	$(GO) test -race -count=1 -run 'TestFleetDrill|TestFleetShardHandoffResume' ./internal/fleet/
